#include "ebs/scenario.h"

#include <sstream>
#include <utility>

#include "obs/json.h"
#include "obs/json_reader.h"

namespace repro::ebs {

namespace {

void write_qos(obs::JsonWriter& w, const sa::QosSpec& q) {
  w.begin_object();
  w.field("iops_limit", q.iops_limit);
  w.field("bandwidth_limit", q.bandwidth_limit);
  w.field("burst_ios", q.burst_ios);
  w.field("burst_bytes", q.burst_bytes);
  w.end_object();
}

bool read_qos(const obs::JsonValue& v, sa::QosSpec* q) {
  if (v.type != obs::JsonValue::Type::kObject) return false;
  obs::json_number(v, "iops_limit", &q->iops_limit);
  obs::json_number(v, "bandwidth_limit", &q->bandwidth_limit);
  obs::json_number(v, "burst_ios", &q->burst_ios);
  obs::json_number(v, "burst_bytes", &q->burst_bytes);
  return true;
}

bool parse_stack(const obs::JsonValue& v, StackKind* out, std::string* error) {
  if (v.type != obs::JsonValue::Type::kString ||
      !stack_from_string(v.str, out)) {
    *error = "unknown stack name: " +
             (v.type == obs::JsonValue::Type::kString ? v.str : "<non-string>");
    return false;
  }
  return true;
}

}  // namespace

std::string ScenarioSpec::to_json() const {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("name", name);
  w.key("topology");
  w.begin_object();
  w.field("compute", compute_nodes);
  w.field("storage", storage_nodes);
  w.field("servers_per_rack", servers_per_rack);
  w.field("spines_per_pod", spines_per_pod);
  w.field("core_switches", core_switches);
  // Written only when sharded so single-engine specs round-trip unchanged.
  if (shards != 1) w.field("shards", shards);
  if (threads != 1) w.field("threads", threads);
  w.end_object();
  if (vd_stripe_width != 0) w.field("vd_stripe_width", vd_stripe_width);
  w.field("stack", to_string(stack));
  if (!compute_stacks.empty()) {
    w.key("compute_stacks");
    w.begin_array();
    for (StackKind k : compute_stacks) w.value(to_string(k));
    w.end_array();
  }
  w.field("on_dpu", on_dpu);
  w.field("seed", seed);
  w.field("store_payload", store_payload);
  w.field("vd_size_bytes", vd_size_bytes);
  if (!vds.empty()) {
    w.key("vds");
    w.begin_array();
    for (const VdSpec& vd : vds) {
      w.begin_object();
      w.field("size_bytes", vd.size_bytes);
      if (vd.has_qos) {
        w.key("qos");
        write_qos(w, vd.qos);
      }
      if (vd.has_slo) {
        w.key("slo");
        qos::write_slo(w, vd.slo);
      }
      w.end_object();
    }
    w.end_array();
  }
  w.key("workload");
  w.begin_object();
  w.field("block_size", workload.block_size);
  w.field("iodepth", workload.iodepth);
  w.field("read_fraction", workload.read_fraction);
  w.field("sequential", workload.sequential);
  w.field("real_payload", workload.real_payload);
  w.field("max_ios", workload.max_ios);
  w.field("poisson_iops", workload.poisson_iops);
  w.end_object();
  // Written only when the subsystem is on, so pre-qos specs round-trip
  // unchanged.
  if (qos.enabled) {
    w.key("qos");
    qos::write_qos_params(w, qos);
  }
  if (ec.enabled) {
    w.key("ec");
    ec::write_ec_params(w, ec);
  }
  if (placement.enabled) {
    w.key("placement");
    placement::write_placement_params(w, placement);
  }
  if (!fault_plan_file.empty()) w.field("fault_plan_file", fault_plan_file);
  w.end_object();
  return os.str();
}

bool scenario_from_json(const std::string& text, ScenarioSpec* out,
                        std::string* error) {
  std::string scratch;
  if (error == nullptr) error = &scratch;
  obs::JsonValue root;
  obs::JsonReader reader(text);
  if (!reader.parse(&root) || root.type != obs::JsonValue::Type::kObject) {
    *error = "scenario: " +
             (reader.error().empty() ? "not a JSON object" : reader.error());
    return false;
  }
  ScenarioSpec spec;
  if (!obs::json_check_keys(
          root,
          {"name", "topology", "vd_stripe_width", "stack", "compute_stacks",
           "on_dpu", "seed", "store_payload", "vd_size_bytes", "vds",
           "workload", "qos", "ec", "placement", "fault_plan_file"},
          "scenario", error)) {
    return false;
  }
  obs::json_string(root, "name", &spec.name);
  double num = 0.0;
  if (const obs::JsonValue* topo = root.find("topology")) {
    if (topo->type != obs::JsonValue::Type::kObject) {
      *error = "scenario: topology must be an object";
      return false;
    }
    if (!obs::json_check_keys(*topo,
                              {"compute", "storage", "servers_per_rack",
                               "spines_per_pod", "core_switches", "shards",
                               "threads"},
                              "scenario.topology", error)) {
      return false;
    }
    if (obs::json_number(*topo, "compute", &num)) {
      spec.compute_nodes = static_cast<int>(num);
    }
    if (obs::json_number(*topo, "storage", &num)) {
      spec.storage_nodes = static_cast<int>(num);
    }
    if (obs::json_number(*topo, "servers_per_rack", &num)) {
      spec.servers_per_rack = static_cast<int>(num);
    }
    if (obs::json_number(*topo, "spines_per_pod", &num)) {
      spec.spines_per_pod = static_cast<int>(num);
    }
    if (obs::json_number(*topo, "core_switches", &num)) {
      spec.core_switches = static_cast<int>(num);
    }
    if (obs::json_number(*topo, "shards", &num)) {
      spec.shards = static_cast<int>(num);
    }
    if (obs::json_number(*topo, "threads", &num)) {
      spec.threads = static_cast<int>(num);
    }
  }
  if (obs::json_number(root, "vd_stripe_width", &num)) {
    spec.vd_stripe_width = static_cast<int>(num);
  }
  if (const obs::JsonValue* v = root.find("stack")) {
    if (!parse_stack(*v, &spec.stack, error)) return false;
  }
  if (const obs::JsonValue* v = root.find("compute_stacks")) {
    if (v->type != obs::JsonValue::Type::kArray) {
      *error = "scenario: compute_stacks must be an array";
      return false;
    }
    for (const obs::JsonValue& item : v->items) {
      StackKind k;
      if (!parse_stack(item, &k, error)) return false;
      spec.compute_stacks.push_back(k);
    }
  }
  obs::json_bool(root, "on_dpu", &spec.on_dpu);
  if (obs::json_number(root, "seed", &num)) {
    spec.seed = static_cast<std::uint64_t>(num);
  }
  obs::json_bool(root, "store_payload", &spec.store_payload);
  if (obs::json_number(root, "vd_size_bytes", &num)) {
    spec.vd_size_bytes = static_cast<std::uint64_t>(num);
  }
  if (const obs::JsonValue* v = root.find("vds")) {
    if (v->type != obs::JsonValue::Type::kArray) {
      *error = "scenario: vds must be an array";
      return false;
    }
    for (const obs::JsonValue& item : v->items) {
      if (item.type != obs::JsonValue::Type::kObject) {
        *error = "scenario: vds entries must be objects";
        return false;
      }
      VdSpec vd;
      if (!obs::json_check_keys(item, {"size_bytes", "qos", "slo"},
                                "scenario.vds", error)) {
        return false;
      }
      if (obs::json_number(item, "size_bytes", &num)) {
        vd.size_bytes = static_cast<std::uint64_t>(num);
      }
      if (const obs::JsonValue* q = item.find("qos")) {
        if (!obs::json_check_keys(*q,
                                  {"iops_limit", "bandwidth_limit",
                                   "burst_ios", "burst_bytes"},
                                  "scenario.vds.qos", error)) {
          return false;
        }
        if (!read_qos(*q, &vd.qos)) {
          *error = "scenario: qos must be an object";
          return false;
        }
        vd.has_qos = true;
      }
      if (const obs::JsonValue* slo = item.find("slo")) {
        if (!obs::json_check_keys(
                *slo, {"target_p99_us", "guaranteed_iops", "class"},
                "scenario.vds.slo", error)) {
          return false;
        }
        if (!qos::read_slo(*slo, &vd.slo)) {
          *error = "scenario: slo must be an object";
          return false;
        }
        vd.has_slo = true;
      }
      spec.vds.push_back(vd);
    }
  }
  if (const obs::JsonValue* v = root.find("workload")) {
    if (v->type != obs::JsonValue::Type::kObject) {
      *error = "scenario: workload must be an object";
      return false;
    }
    if (!obs::json_check_keys(*v,
                              {"block_size", "iodepth", "read_fraction",
                               "sequential", "real_payload", "max_ios",
                               "poisson_iops"},
                              "scenario.workload", error)) {
      return false;
    }
    if (obs::json_number(*v, "block_size", &num)) {
      spec.workload.block_size = static_cast<std::uint32_t>(num);
    }
    if (obs::json_number(*v, "iodepth", &num)) {
      spec.workload.iodepth = static_cast<int>(num);
    }
    obs::json_number(*v, "read_fraction", &spec.workload.read_fraction);
    obs::json_bool(*v, "sequential", &spec.workload.sequential);
    obs::json_bool(*v, "real_payload", &spec.workload.real_payload);
    if (obs::json_number(*v, "max_ios", &num)) {
      spec.workload.max_ios = static_cast<std::uint64_t>(num);
    }
    obs::json_number(*v, "poisson_iops", &spec.workload.poisson_iops);
  }
  if (const obs::JsonValue* v = root.find("qos")) {
    if (!obs::json_check_keys(
            *v,
            {"enabled", "early_reject", "headroom", "reject_latency_us",
             "predictor_window_us", "predictor_buckets", "sched_enabled",
             "sched_weight_guaranteed", "sched_weight_best_effort"},
            "scenario.qos", error)) {
      return false;
    }
    if (!qos::read_qos_params(*v, &spec.qos)) {
      *error = "scenario: qos must be an object";
      return false;
    }
  }
  if (const obs::JsonValue* v = root.find("ec")) {
    // The ec subsystem owns its key list (it validates geometry too), so
    // the allow-list is its predicate rather than a literal copy.
    if (!obs::json_check_keys(*v, {}, "scenario.ec", error,
                              &ec::ec_params_key_allowed)) {
      return false;
    }
    if (!ec::read_ec_params(*v, &spec.ec)) {
      *error = "scenario: ec must be an object with valid k/m geometry";
      return false;
    }
  }
  if (const obs::JsonValue* v = root.find("placement")) {
    if (!obs::json_check_keys(*v, {}, "scenario.placement", error,
                              &placement::placement_params_key_allowed)) {
      return false;
    }
    if (!placement::read_placement_params(*v, &spec.placement)) {
      *error = "scenario: placement must be an object with a known policy";
      return false;
    }
  }
  obs::json_string(root, "fault_plan_file", &spec.fault_plan_file);
  *out = std::move(spec);
  return true;
}

ClusterParams params_from(const ScenarioSpec& spec) {
  ClusterParams p;
  p.topo.compute_servers = spec.compute_nodes;
  p.topo.storage_servers = spec.storage_nodes;
  p.topo.servers_per_rack = spec.servers_per_rack;
  p.topo.spines_per_pod = spec.spines_per_pod;
  p.topo.core_switches = spec.core_switches;
  p.stack = spec.stack;
  p.compute_stacks = spec.compute_stacks;
  p.on_dpu = spec.on_dpu;
  p.seed = spec.seed;
  p.block_server.store_payload = spec.store_payload;
  p.topo.shards = spec.shards;
  p.vd_stripe_width = spec.vd_stripe_width;
  p.qos = spec.qos;
  p.ec = spec.ec;
  p.placement = spec.placement;
  return p;
}

Scenario build_scenario(const ScenarioSpec& spec, obs::Obs* obs) {
  ClusterParams p = params_from(spec);
  p.obs = obs;
  Scenario s;
  if (spec.shards > 1) {
    s.sharded = std::make_unique<sim::ShardedEngine>(
        spec.shards, spec.threads > 0 ? spec.threads : 1);
    s.cluster = std::make_unique<Cluster>(*s.sharded, std::move(p));
  } else {
    s.engine = std::make_unique<sim::Engine>();
    s.cluster = std::make_unique<Cluster>(*s.engine, std::move(p));
  }
  if (spec.vds.empty()) {
    for (int i = 0; i < s.cluster->num_compute(); ++i) {
      s.vds.push_back(s.cluster->create_vd(spec.vd_size_bytes));
    }
  } else {
    for (const VdSpec& vd : spec.vds) {
      const std::uint64_t id = s.cluster->create_vd(vd.size_bytes);
      if (vd.has_qos) s.cluster->set_qos(id, vd.qos);
      if (vd.has_slo) s.cluster->set_slo(id, vd.slo);
      s.vds.push_back(id);
    }
  }
  return s;
}

}  // namespace repro::ebs
