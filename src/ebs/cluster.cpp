#include "ebs/cluster.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "obs/obs.h"

namespace repro::ebs {

namespace {

/// The stack kinds a params block assigns across the fleet (the homogeneous
/// `stack` when no per-node list is given).
std::vector<StackKind> fleet_kinds(const ClusterParams& p) {
  if (p.compute_stacks.empty()) return {p.stack};
  return p.compute_stacks;
}

}  // namespace

std::vector<stack::ServerFamily> ClusterParams::server_families() const {
  if (ec.enabled) return {stack::ServerFamily::kEcServer};
  const std::vector<StackKind> kinds = fleet_kinds(*this);
  bool present[stack::kNumServerFamilies] = {};
  for (StackKind k : kinds) {
    present[static_cast<int>(stack::server_family(k))] = true;
  }
  std::vector<stack::ServerFamily> families;
  for (int f = 0; f < stack::kNumServerFamilies; ++f) {
    if (present[f]) families.push_back(static_cast<stack::ServerFamily>(f));
  }
  return families;
}

stack::ServerFamily ClusterParams::transport_family() const {
  const std::vector<StackKind> kinds = fleet_kinds(*this);
  const stack::ServerFamily family = stack::server_family(kinds.front());
  for (StackKind k : kinds) {
    if (stack::server_family(k) != family) {
      if (ec.enabled) std::abort();  // EC fleets share one transport family
    }
  }
  return family;
}

bool ClusterParams::kernel_generation() const {
  const std::vector<StackKind> kinds = fleet_kinds(*this);
  return std::all_of(kinds.begin(), kinds.end(), [](StackKind k) {
    return k == StackKind::kKernelTcp;
  });
}

ComputeNode::ComputeNode(Cluster& cluster, int index, net::Nic& nic)
    : nic_(&nic) {
  const ClusterParams& p = cluster.params_;
  stack::ComputeContext ctx{
      cluster.engine(),
      nic,
      cluster.segments_,
      cluster.qos_,
      &cluster.cipher_,
      p,
      cluster.rng_.fork(1000 + static_cast<std::uint64_t>(index))};
  if (p.qos.enabled) ctx.slos = &cluster.slos_;
  stack_ = stack::StackFactory::instance().make_compute(p.stack_for(index),
                                                        std::move(ctx));
  // Admission gate in front of the doorbell; node-affine (bound to this
  // node's home engine, under whose shard scope we are constructed).
  if (p.qos.enabled) {
    admission_ = std::make_unique<qos::NodeAdmission>(
        cluster.engine(), cluster.slos_, cluster.qos_, p.qos);
    // Cluster-level admission reads/writes one shared counter per I/O, so
    // it is only wired on single-shard builds (a barrier per doorbell would
    // serialize the simulation; cross-shard reads would break determinism).
    if (p.placement.enabled && p.placement.cluster_admission &&
        (cluster.sharded_ == nullptr || cluster.sharded_->shards() <= 1)) {
      admission_->set_cluster_gate(&cluster.view_,
                                   p.placement.cluster_inflight_limit);
    }
  }
  // EC striping layer between admission and the stack. Every sub-I/O it
  // issues (parity RMW, degraded decode, rebuild) is guest-shaped traffic
  // through the unmodified generation underneath.
  if (p.ec.enabled) {
    auto inner = [s = stack_.get()](transport::IoRequest io,
                                    transport::IoCompleteFn done) {
      s->submit_io(std::move(io), std::move(done));
    };
    ec_ = std::make_unique<ec::EcClient>(cluster.engine(), cluster.segments_,
                                         p.ec, inner);
    // Rebuild remap mutates the shared SegmentTable: under a sharded build
    // it must run at an epoch barrier with every shard quiescent (same
    // contract as net::Network::set_link_alive); the continuation is then
    // rescheduled onto this node's home engine.
    sim::ShardedEngine* sharded = cluster.sharded_;
    sa::SegmentTable* segments = &cluster.segments_;
    sim::Engine* home = &cluster.engine();
    ec::MaintenanceAgent::RemapFn remap =
        [sharded, segments, home](std::uint64_t vd, std::uint64_t seg,
                                  sa::SegmentLocation loc,
                                  std::function<void()> done) {
          if (sharded != nullptr && sharded->shards() > 1) {
            sharded->post_global(
                [segments, home, sharded, vd, seg, loc,
                 done = std::move(done)]() mutable {
                  segments->map(vd, seg, loc);
                  home->schedule_at(sharded->now(),
                                    [done = std::move(done)] { done(); });
                });
            return;
          }
          segments->map(vd, seg, loc);
          done();
        };
    maintenance_ = std::make_unique<ec::MaintenanceAgent>(
        cluster.engine(), *ec_, cluster.segments_, p.ec, inner,
        std::move(remap));
    if (p.placement.enabled) {
      // The maintenance plane reads the view (exposure-ordered drain under
      // the exposure policy) and reports health changes into it. Health
      // writes mutate shared state, so sharded builds route them through
      // the same global-barrier mechanism as segment remaps.
      maintenance_->set_cluster_view(
          &cluster.view_,
          p.placement.policy == placement::PolicyKind::kExposureAware);
      placement::ClusterView* view = &cluster.view_;
      maintenance_->set_health_listener(
          [sharded, view](net::IpAddr server, bool alive) {
            if (sharded != nullptr && sharded->shards() > 1) {
              sharded->post_global(
                  [view, server, alive] { view->set_health(server, alive); });
              return;
            }
            view->set_health(server, alive);
          });
    }
  }
}

void ComputeNode::submit_io(transport::IoRequest io,
                            transport::IoCompleteFn done) {
  if (admission_ != nullptr) {
    admission_->submit(std::move(io), std::move(done),
                       [this](transport::IoRequest fwd,
                              transport::IoCompleteFn fwd_done) {
                         if (ec_ != nullptr) {
                           ec_->submit_io(std::move(fwd), std::move(fwd_done));
                         } else {
                           stack_->submit_io(std::move(fwd),
                                             std::move(fwd_done));
                         }
                       });
    return;
  }
  if (ec_ != nullptr) {
    ec_->submit_io(std::move(io), std::move(done));
    return;
  }
  stack_->submit_io(std::move(io), std::move(done));
}

void ComputeNode::register_observables(obs::Obs& obs) {
  obs.tracer().set_process_name(static_cast<std::uint32_t>(nic_->id()),
                                nic_->name());
  nic_->register_metrics(obs.registry());
  stack_->register_observables(obs, *nic_);
  if (admission_ != nullptr) {
    admission_->register_metrics(obs.registry(), nic_->name());
  }
}

double ComputeNode::consumed_cores(TimeNs over) const {
  return stack_->consumed_cores(over);
}

void ComputeNode::reset_accounting() {
  stack_->reset_accounting();
  nic_->reset_counters();
}

StorageNode::StorageNode(Cluster& cluster, int index, net::Nic& nic)
    : nic_(&nic) {
  auto& eng = cluster.engine();
  const ClusterParams& p = cluster.params_;
  Rng rng = cluster.rng_.fork(2000 + static_cast<std::uint64_t>(index));
  cpu_ = std::make_unique<sim::CpuPool>(eng, "storage-cpu",
                                        p.server_stack_cores,
                                        sim::CpuPool::Dispatch::kByHash);
  storage::BlockServerParams bs = p.block_server;
  // EC replaces replication: each fragment is stored once, redundancy
  // comes from the parity fragments on other nodes.
  if (p.ec.enabled) bs.backend.replicas = 1;
  block_server_ = std::make_unique<storage::BlockServer>(eng, bs, rng.fork(1));
  const std::vector<stack::ServerFamily> families = p.server_families();
  const bool kernel = p.kernel_generation();
  // Each family engine installs its NIC deliver hook in its ctor. The first
  // family draws RNG stream 2 (the pre-refactor single-stack stream, so
  // homogeneous fleets stay bit-identical); extra families draw 3, 4, …
  struct Hook {
    std::uint16_t port;
    net::Nic::DeliverFn fn;
  };
  std::vector<Hook> hooks;
  std::uint64_t stream = 2;
  for (stack::ServerFamily family : families) {
    stack::ServerContext ctx{eng,    nic,    *cpu_, *block_server_,
                             p,      kernel, rng.fork(stream++)};
    if (family == stack::ServerFamily::kEcServer) {
      ctx.ec_inner = p.transport_family();
    }
    stacks_.push_back(
        stack::StackFactory::instance().make_server(family, std::move(ctx)));
    if (families.size() > 1) {
      hooks.push_back({stack::server_port(family), nic.deliver()});
    }
  }
  if (families.size() > 1) {
    // Heterogeneous node: demux inbound packets to the family that owns the
    // destination port. Packets addressed to no resident family (none in
    // practice — every client targets a server port) are dropped like any
    // host without a listener.
    nic.set_deliver([hooks = std::move(hooks)](net::Packet& pkt) {
      for (const Hook& h : hooks) {
        if (pkt.flow.dst_port == h.port) {
          h.fn(pkt);
          return;
        }
      }
    });
  }
}

void StorageNode::register_observables(obs::Obs& obs) {
  obs::Registry& reg = obs.registry();
  obs.tracer().set_process_name(static_cast<std::uint32_t>(nic_->id()),
                                nic_->name());
  nic_->register_metrics(reg);
  const obs::Labels node = obs::label("node", nic_->name());
  reg.expose_gauge("storage.cpu.busy_ns", node,
                   [c = cpu_.get()]() -> std::int64_t {
                     return c->total_busy_ns();
                   });
  reg.add_resettable(cpu_.get());
  reg.expose_gauge("ssd.queue_backlog_ns", node,
                   [b = block_server_.get()]() -> std::int64_t {
                     return b->ssd_queue_backlog();
                   });
  reg.expose_gauge("ssd.ops", node,
                   [b = block_server_.get()]() -> std::int64_t {
                     return static_cast<std::int64_t>(b->ssd_ops());
                   });
}

Cluster::Cluster(sim::Engine& engine, ClusterParams params)
    : engine_(&engine),
      params_(std::move(params)),
      rng_(params_.seed),
      cipher_(params_.dpu.cipher_key) {
  network_ = std::make_unique<net::Network>(engine, net::NetworkParams{},
                                            rng_.next());
  init();
}

Cluster::Cluster(sim::ShardedEngine& se, ClusterParams params)
    : engine_(&se.shard(0)),
      sharded_(&se),
      params_(std::move(params)),
      rng_(params_.seed),
      cipher_(params_.dpu.cipher_key) {
  // The engine's shard count is the single source of truth; the topology
  // partition follows it.
  params_.topo.shards = se.shards();
  if (params_.obs != nullptr) {
    params_.obs->tracer().set_shards(se.shards());
  }
  network_ = std::make_unique<net::Network>(se, net::NetworkParams{},
                                            rng_.next());
  init();
  // Conservative lookahead: the fastest cross-shard wire bounds how far a
  // shard may run ahead before a neighbour could affect it.
  if (network_->min_cross_shard_prop() > 0) {
    se.set_lookahead(network_->min_cross_shard_prop());
  }
}

void Cluster::init() {
  if (params_.obs != nullptr) network_->set_obs(params_.obs);
  clos_ = net::build_clos(*network_, params_.topo);
  // Rack membership is static topology: feed the view once, at build time
  // (serial — no shard has started running), for policies and oracles.
  for (int i = 0; i < static_cast<int>(clos_.storage.size()); ++i) {
    view_.set_rack(clos_.storage[static_cast<std::size_t>(i)]->ip(),
                   clos_.rack_of_server(i));
  }
  if (params_.placement.enabled) {
    policy_ = placement::make_policy(params_.placement.policy);
    segments_.set_policy(policy_.get(), &view_);
  }
  for (int i = 0; i < static_cast<int>(clos_.storage.size()); ++i) {
    net::Nic& nic = *clos_.storage[static_cast<std::size_t>(i)];
    // Build the node under its NIC's home shard so every engine-bound
    // component (CPU pool, block server, server stacks) lands there.
    sim::ShardScope scope(nic.shard());
    storage_nodes_.push_back(std::make_unique<StorageNode>(*this, i, nic));
  }
  for (int i = 0; i < static_cast<int>(clos_.compute.size()); ++i) {
    net::Nic& nic = *clos_.compute[static_cast<std::size_t>(i)];
    sim::ShardScope scope(nic.shard());
    compute_nodes_.push_back(std::make_unique<ComputeNode>(*this, i, nic));
  }
  for (auto& n : compute_nodes_) {
    warmup_registry_.add_resettable(&n->stack());
    warmup_registry_.add_resettable(&n->nic());
    if (n->admission() != nullptr) {
      warmup_registry_.add_resettable(n->admission());
    }
  }
  if (params_.obs != nullptr) register_observables();
}

void Cluster::reset_warmup() { warmup_registry_.reset_all(); }

void Cluster::register_observables() {
  obs::Obs& obs = *params_.obs;
  obs::Registry& reg = obs.registry();
  auto switches = [&](const std::vector<net::Switch*>& sws) {
    for (net::Switch* sw : sws) {
      obs.tracer().set_process_name(static_cast<std::uint32_t>(sw->id()),
                                    sw->name());
      sw->register_metrics(reg);
    }
  };
  switches(clos_.compute_tors);
  switches(clos_.compute_spines);
  switches(clos_.cores);
  switches(clos_.storage_spines);
  switches(clos_.storage_tors);
  for (auto& n : compute_nodes_) {
    sim::ShardScope scope(n->nic().shard());
    n->register_observables(obs);
  }
  for (auto& n : storage_nodes_) {
    sim::ShardScope scope(n->nic().shard());
    n->register_observables(obs);
  }
}

Cluster::~Cluster() = default;

std::uint64_t Cluster::create_vd(std::uint64_t size_bytes) {
  const std::uint64_t vd = next_vd_++;
  const std::size_t width =
      params_.vd_stripe_width > 0
          ? std::min<std::size_t>(
                static_cast<std::size_t>(params_.vd_stripe_width),
                storage_nodes_.size())
          : storage_nodes_.size();
  std::vector<net::IpAddr> servers;
  servers.reserve(width);
  // Stripe starting at a rotating server so VDs spread evenly.
  const std::size_t start = static_cast<std::size_t>(vd) %
                            storage_nodes_.size();
  for (std::size_t i = 0; i < width; ++i) {
    servers.push_back(
        storage_nodes_[(start + i) % storage_nodes_.size()]->nic().ip());
  }
  if (params_.ec.enabled) {
    // EC layout: the server list becomes the stripe rotation pool; it must
    // hold at least k+m distinct servers (k+m+1 for rebuild headroom).
    if (servers.size() < static_cast<std::size_t>(params_.ec.k) +
                             static_cast<std::size_t>(params_.ec.m)) {
      std::abort();
    }
    segments_.map_disk_ec(vd, size_bytes, servers, params_.ec.k,
                          params_.ec.m);
    return vd;
  }
  segments_.map_disk(vd, size_bytes, servers);
  return vd;
}

void Cluster::set_qos(std::uint64_t vd_id, const sa::QosSpec& spec) {
  qos_.set(vd_id, spec);
}

void Cluster::set_slo(std::uint64_t vd_id, const qos::SloSpec& spec) {
  slos_.set(vd_id, spec);
}

}  // namespace repro::ebs
