#include "ebs/cluster.h"

#include <algorithm>

#include "obs/obs.h"

namespace repro::ebs {

std::string to_string(StackKind kind) {
  switch (kind) {
    case StackKind::kKernelTcp: return "kernel-tcp";
    case StackKind::kLuna: return "luna";
    case StackKind::kRdma: return "rdma";
    case StackKind::kSolarStar: return "solar*";
    case StackKind::kSolar: return "solar";
  }
  return "?";
}

ComputeNode::ComputeNode(Cluster& cluster, int index, net::Nic& nic)
    : cluster_(cluster), nic_(&nic) {
  auto& eng = cluster.engine();
  const auto& p = cluster.params_;
  Rng rng = cluster.rng_.fork(1000 + static_cast<std::uint64_t>(index));

  switch (p.stack) {
    case StackKind::kSolar:
    case StackKind::kSolarStar: {
      dpu_ = std::make_unique<dpu::AliDpu>(eng, p.dpu, rng.fork(1));
      solar::SolarParams sp = p.solar;
      sp.offload = p.stack == StackKind::kSolar;
      solar_ = std::make_unique<solar::SolarClient>(
          eng, *dpu_, nic, cluster.segments_, cluster.qos_, sp, rng.fork(2));
      break;
    }
    case StackKind::kKernelTcp:
    case StackKind::kLuna: {
      const bool kernel = p.stack == StackKind::kKernelTcp;
      if (p.on_dpu) {
        dpu_ = std::make_unique<dpu::AliDpu>(eng, p.dpu, rng.fork(1));
        pcie_taxed_ = true;
      }
      const int cores = p.on_dpu ? p.dpu.cpu_cores : p.host_cpu_cores;
      // Kernel TCP schedules work across cores with cross-core cost;
      // LUNA is share-nothing by connection/VD hash (§3.2).
      cpu_ = std::make_unique<sim::CpuPool>(
          eng, "host-cpu", cores,
          kernel ? sim::CpuPool::Dispatch::kLeastLoaded
                 : sim::CpuPool::Dispatch::kByHash,
          kernel ? ns(250) : 0);
      tcp_ = std::make_unique<transport::TcpStack>(
          eng, nic, *cpu_,
          kernel ? transport::kernel_tcp_profile() : transport::luna_profile(),
          rng.fork(3));
      agent_ = std::make_unique<sa::StorageAgent>(
          eng, *cpu_, cluster.segments_, cluster.qos_, *tcp_,
          &cluster.cipher_, p.sa);
      break;
    }
    case StackKind::kRdma: {
      if (p.on_dpu) {
        dpu_ = std::make_unique<dpu::AliDpu>(eng, p.dpu, rng.fork(1));
        pcie_taxed_ = true;
      }
      const int cores = p.on_dpu ? p.dpu.cpu_cores : p.host_cpu_cores;
      cpu_ = std::make_unique<sim::CpuPool>(eng, "host-cpu", cores,
                                            sim::CpuPool::Dispatch::kByHash);
      rdma_ = std::make_unique<rdma::RdmaStack>(eng, nic, *cpu_, p.rdma,
                                                rng.fork(3));
      agent_ = std::make_unique<sa::StorageAgent>(
          eng, *cpu_, cluster.segments_, cluster.qos_, *rdma_,
          &cluster.cipher_, p.sa);
      break;
    }
  }
}

void ComputeNode::submit_io(transport::IoRequest io,
                            transport::IoCompleteFn done) {
  if (solar_) {
    solar_->submit_io(std::move(io), std::move(done));
    return;
  }
  if (!pcie_taxed_) {
    agent_->submit_io(std::move(io), std::move(done));
    return;
  }
  // Bare-metal hosting with a software stack (Fig. 10 a/b): every payload
  // byte crosses the DPU's internal PCIe twice in each direction.
  auto& pcie = dpu_->internal_pcie();
  const std::uint32_t len = io.len;
  const bool write = io.op == transport::OpType::kWrite;
  auto forward = [this, io = std::move(io), done = std::move(done), len,
                  write]() mutable {
    agent_->submit_io(
        std::move(io),
        [this, done = std::move(done), len, write](transport::IoResult res) {
          if (write) {
            done(std::move(res));
            return;
          }
          auto& pcie2 = dpu_->internal_pcie();
          auto shared = std::make_shared<transport::IoResult>(std::move(res));
          pcie2.transfer(len, [this, shared, done, len]() mutable {
            dpu_->internal_pcie().transfer(len, [shared, done] {
              done(std::move(*shared));
            });
          });
        });
  };
  if (write) {
    pcie.transfer(len, [this, len, forward = std::move(forward)]() mutable {
      dpu_->internal_pcie().transfer(len, std::move(forward));
    });
  } else {
    forward();
  }
}

void ComputeNode::register_observables(obs::Obs& obs) {
  obs::Registry& reg = obs.registry();
  const std::uint32_t pid = static_cast<std::uint32_t>(nic_->id());
  obs.tracer().set_process_name(pid, nic_->name());
  nic_->register_metrics(reg);
  const obs::Labels node = obs::label("node", nic_->name());
  if (cpu_) {
    reg.expose_gauge("cpu.busy_ns", node,
                     [c = cpu_.get()]() -> std::int64_t {
                       return c->total_busy_ns();
                     });
    reg.add_resettable(cpu_.get());
  }
  if (dpu_) {
    reg.expose_gauge("dpu.cpu.busy_ns", node,
                     [c = &dpu_->cpu()]() -> std::int64_t {
                       return c->total_busy_ns();
                     });
    reg.expose_gauge("dpu.pcie.bytes", node,
                     [p = &dpu_->internal_pcie()]() -> std::int64_t {
                       return static_cast<std::int64_t>(
                           p->bytes_transferred());
                     });
    reg.expose_gauge("dpu.pcie.backlog_ns", node,
                     [p = &dpu_->internal_pcie()]() -> std::int64_t {
                       return p->backlog();
                     });
    reg.expose_gauge("dpu.guest_dma.bytes", node,
                     [p = &dpu_->guest_dma()]() -> std::int64_t {
                       return static_cast<std::int64_t>(
                           p->bytes_transferred());
                     });
    reg.add_resettable(&dpu_->cpu());
    reg.add_resettable(&dpu_->internal_pcie());
    reg.add_resettable(&dpu_->guest_dma());
  }
  if (solar_) solar_->register_metrics(reg);
  if (agent_) {
    agent_->set_obs(&obs, pid);
    agent_->register_metrics(reg, nic_->name());
  }
}

double ComputeNode::consumed_cores(TimeNs over) const {
  double total = 0.0;
  if (cpu_) total += cpu_->consumed_cores(over);
  if (dpu_) total += dpu_->cpu().consumed_cores(over);
  return total;
}

void ComputeNode::reset_accounting() {
  if (cpu_) cpu_->reset_accounting();
  if (dpu_) dpu_->cpu().reset_accounting();
  nic_->reset_counters();
}

StorageNode::StorageNode(Cluster& cluster, int index, net::Nic& nic)
    : nic_(&nic) {
  auto& eng = cluster.engine();
  const auto& p = cluster.params_;
  Rng rng = cluster.rng_.fork(2000 + static_cast<std::uint64_t>(index));
  cpu_ = std::make_unique<sim::CpuPool>(eng, "storage-cpu",
                                        p.server_stack_cores,
                                        sim::CpuPool::Dispatch::kByHash);
  block_server_ = std::make_unique<storage::BlockServer>(eng, p.block_server,
                                                         rng.fork(1));
  switch (p.stack) {
    case StackKind::kSolar:
    case StackKind::kSolarStar:
      solar_ = std::make_unique<solar::SolarServer>(
          eng, nic, *cpu_, *block_server_, solar::SolarServerParams{},
          rng.fork(2));
      break;
    case StackKind::kKernelTcp:
    case StackKind::kLuna: {
      // Storage servers always run the user-space stack server-side once
      // LUNA shipped; for the kernel generation they ran kernel TCP too.
      const bool kernel = p.stack == StackKind::kKernelTcp;
      tcp_ = std::make_unique<transport::TcpStack>(
          eng, nic, *cpu_,
          kernel ? transport::kernel_tcp_profile() : transport::luna_profile(),
          rng.fork(2));
      tcp_->set_handler(
          [this](transport::StorageRequest req,
                 std::function<void(transport::StorageResponse)> reply) {
            block_server_->handle(std::move(req), std::move(reply));
          });
      break;
    }
    case StackKind::kRdma:
      rdma_ = std::make_unique<rdma::RdmaStack>(eng, nic, *cpu_,
                                                p.rdma, rng.fork(2));
      rdma_->set_handler(
          [this](transport::StorageRequest req,
                 std::function<void(transport::StorageResponse)> reply) {
            block_server_->handle(std::move(req), std::move(reply));
          });
      break;
  }
}

void StorageNode::register_observables(obs::Obs& obs) {
  obs::Registry& reg = obs.registry();
  obs.tracer().set_process_name(static_cast<std::uint32_t>(nic_->id()),
                                nic_->name());
  nic_->register_metrics(reg);
  const obs::Labels node = obs::label("node", nic_->name());
  reg.expose_gauge("storage.cpu.busy_ns", node,
                   [c = cpu_.get()]() -> std::int64_t {
                     return c->total_busy_ns();
                   });
  reg.add_resettable(cpu_.get());
  reg.expose_gauge("ssd.queue_backlog_ns", node,
                   [b = block_server_.get()]() -> std::int64_t {
                     return b->ssd_queue_backlog();
                   });
  reg.expose_gauge("ssd.ops", node,
                   [b = block_server_.get()]() -> std::int64_t {
                     return static_cast<std::int64_t>(b->ssd_ops());
                   });
}

Cluster::Cluster(sim::Engine& engine, ClusterParams params)
    : engine_(&engine),
      params_(std::move(params)),
      rng_(params_.seed),
      cipher_(params_.dpu.cipher_key) {
  network_ = std::make_unique<net::Network>(engine, net::NetworkParams{},
                                            rng_.next());
  if (params_.obs != nullptr) network_->set_obs(params_.obs);
  clos_ = net::build_clos(*network_, params_.topo);
  for (int i = 0; i < static_cast<int>(clos_.storage.size()); ++i) {
    storage_nodes_.push_back(
        std::make_unique<StorageNode>(*this, i, *clos_.storage[static_cast<std::size_t>(i)]));
  }
  for (int i = 0; i < static_cast<int>(clos_.compute.size()); ++i) {
    compute_nodes_.push_back(
        std::make_unique<ComputeNode>(*this, i, *clos_.compute[static_cast<std::size_t>(i)]));
  }
  if (params_.obs != nullptr) register_observables();
}

void Cluster::register_observables() {
  obs::Obs& obs = *params_.obs;
  obs::Registry& reg = obs.registry();
  auto switches = [&](const std::vector<net::Switch*>& sws) {
    for (net::Switch* sw : sws) {
      obs.tracer().set_process_name(static_cast<std::uint32_t>(sw->id()),
                                    sw->name());
      sw->register_metrics(reg);
    }
  };
  switches(clos_.compute_tors);
  switches(clos_.compute_spines);
  switches(clos_.cores);
  switches(clos_.storage_spines);
  switches(clos_.storage_tors);
  for (auto& n : compute_nodes_) n->register_observables(obs);
  for (auto& n : storage_nodes_) n->register_observables(obs);
}

Cluster::~Cluster() = default;

std::uint64_t Cluster::create_vd(std::uint64_t size_bytes) {
  const std::uint64_t vd = next_vd_++;
  std::vector<net::IpAddr> servers;
  servers.reserve(storage_nodes_.size());
  // Stripe starting at a rotating server so VDs spread evenly.
  const std::size_t start = static_cast<std::size_t>(vd) %
                            storage_nodes_.size();
  for (std::size_t i = 0; i < storage_nodes_.size(); ++i) {
    servers.push_back(
        storage_nodes_[(start + i) % storage_nodes_.size()]->nic().ip());
  }
  segments_.map_disk(vd, size_bytes, servers);
  return vd;
}

void Cluster::set_qos(std::uint64_t vd_id, const sa::QosSpec& spec) {
  qos_.set(vd_id, spec);
}

}  // namespace repro::ebs
