// ScenarioSpec: one declarative description of an EBS experiment — topology,
// per-node stack assignment, virtual disks with optional QoS, workload knobs
// and an optional chaos fault-plan reference — that round-trips through JSON
// and builds through a single entry point.
//
// Every harness (bench_util, the chaos harness, sim_fuzz, tests) derives its
// cluster from a spec, so "what did this run simulate" is one JSON blob, not
// a scatter of hard-coded parameter blocks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ebs/cluster.h"
#include "ec/params.h"
#include "qos/slo.h"
#include "sa/qos_table.h"

namespace repro::ebs {

/// One virtual disk: size plus optional QoS and SLO contracts.
struct VdSpec {
  std::uint64_t size_bytes = 8ull << 30;
  bool has_qos = false;
  sa::QosSpec qos;
  bool has_slo = false;
  qos::SloSpec slo;
};

/// Workload knobs harnesses feed to fio / Poisson generators. The spec only
/// carries them; the harness decides which generator to run.
struct WorkloadSpec {
  std::uint32_t block_size = 4096;  ///< 0 = sample from the size mix
  int iodepth = 32;
  double read_fraction = 1.0;
  bool sequential = false;
  bool real_payload = false;
  std::uint64_t max_ios = 0;
  double poisson_iops = 0.0;  ///< 0 = closed-loop fio only
};

struct ScenarioSpec {
  std::string name = "scenario";
  // Topology (net::ClosConfig essentials).
  int compute_nodes = 2;
  int storage_nodes = 8;
  int servers_per_rack = 8;
  int spines_per_pod = 2;
  int core_switches = 2;
  /// Fabric partition for the sharded engine: racks map to `shards`
  /// contiguous node-affine shards. 1 = classic single-engine build.
  int shards = 1;
  /// Worker threads driving the shards (only meaningful with shards > 1).
  /// Results are bit-identical for any value; this is purely a speed knob.
  int threads = 1;
  /// Storage servers each VD stripes across (0 = all of them).
  int vd_stripe_width = 0;
  /// Homogeneous fleet stack; overridden per node by `compute_stacks`.
  StackKind stack = StackKind::kLuna;
  std::vector<StackKind> compute_stacks;
  bool on_dpu = false;
  std::uint64_t seed = 42;
  bool store_payload = false;
  /// Size of the default per-compute-node VD when `vds` is empty.
  std::uint64_t vd_size_bytes = 8ull << 30;
  /// Explicit VD list; empty = one `vd_size_bytes` VD per compute node.
  std::vector<VdSpec> vds;
  WorkloadSpec workload;
  /// Fleet-wide admission/scheduling knobs (qos subsystem). Disabled by
  /// default: the admission layer is then never built and the run is
  /// bit-identical to a spec that predates the field.
  qos::QosParams qos;
  /// Erasure-coding knobs (src/ec). Disabled by default: the fleet then
  /// runs 3-replica like every spec that predates the field.
  ec::EcParams ec;
  /// Cluster-level placement knobs (src/placement). Disabled by default:
  /// no policy is built and layouts are bit-identical to pre-field specs.
  placement::PlacementParams placement;
  /// Optional path to a chaos::FaultPlan JSON to inject during the run.
  std::string fault_plan_file;

  std::string to_json() const;
};

/// Parses a spec previously produced by `to_json` (or hand-written). Absent
/// fields keep their defaults; unrecognized fields are an error, not a
/// silent no-op (a typo'd knob must not quietly run the default). Returns
/// false with `*error` set on malformed input or unknown stack names.
bool scenario_from_json(const std::string& text, ScenarioSpec* out,
                        std::string* error);

/// The ClusterParams a spec describes. Field-for-field identical to what the
/// harnesses used to build by hand, so existing experiments are unchanged.
ClusterParams params_from(const ScenarioSpec& spec);

/// A built scenario: engine + cluster + the VDs the spec declared (with QoS
/// applied), ready for a workload. Specs with `shards > 1` build on a
/// `ShardedEngine` instead (`engine` stays null, `sharded` is set) — drive
/// the run via `sharded->run()` / `run_until()`.
struct Scenario {
  std::unique_ptr<sim::Engine> engine;
  std::unique_ptr<sim::ShardedEngine> sharded;
  std::unique_ptr<Cluster> cluster;
  std::vector<std::uint64_t> vds;
};

/// Builds the engine, cluster and VDs a spec describes. `obs` optional
/// (null = dark).
Scenario build_scenario(const ScenarioSpec& spec, obs::Obs* obs = nullptr);

}  // namespace repro::ebs
