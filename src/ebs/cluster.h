// End-to-end EBS composition: build a Clos fabric, compute nodes running a
// chosen stack generation, storage nodes running block servers, and virtual
// disks striped across them. Every experiment harness goes through this.
//
// Stack generations (the paper's timeline):
//   kKernelTcp — SA in software + kernel TCP        (pre-2019)
//   kLuna      — SA in software + user-space TCP    (§3)
//   kRdma      — SA in software + RC RDMA           (the rejected option)
//   kSolarStar — SOLAR protocol, data path on CPU   (§4.7 ablation)
//   kSolar     — SOLAR fully offloaded              (§4)
//
// `on_dpu` moves the compute side onto ALI-DPU (bare-metal hosting, §4.3):
// software stacks then run on six wimpy cores and pay the internal-PCIe
// crossings of Fig. 10.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dpu/dpu.h"
#include "net/topology.h"
#include "rdma/rdma.h"
#include "sa/agent.h"
#include "solar/client.h"
#include "solar/server.h"
#include "storage/block_server.h"
#include "transport/tcp.h"

namespace repro::obs {
class Obs;
}

namespace repro::ebs {

enum class StackKind { kKernelTcp, kLuna, kRdma, kSolarStar, kSolar };

std::string to_string(StackKind kind);

struct ClusterParams {
  net::ClosConfig topo;
  StackKind stack = StackKind::kLuna;
  bool on_dpu = false;  ///< compute side hosted on ALI-DPU (bare-metal)
  int host_cpu_cores = 8;
  int server_stack_cores = 6;
  dpu::DpuParams dpu;
  sa::SaParams sa;
  solar::SolarParams solar;
  rdma::RdmaParams rdma;
  storage::BlockServerParams block_server;
  std::uint64_t seed = 1;
  /// Optional observability hookup: when set, the cluster hands the
  /// subsystem to the network, names every trace process, and registers
  /// all component metrics/gauges. Null = dark (the default): no obs code
  /// runs anywhere near the hot path.
  obs::Obs* obs = nullptr;
};

class Cluster;

/// One compute server: guest entry point + the configured data path.
class ComputeNode {
 public:
  ComputeNode(Cluster& cluster, int index, net::Nic& nic);

  /// Guest-visible I/O submission (the virtio/NVMe doorbell).
  void submit_io(transport::IoRequest io, transport::IoCompleteFn done);

  /// "Consumed cores" on the compute side over `over` ns (Table 1 metric).
  double consumed_cores(TimeNs over) const;
  void reset_accounting();

  net::Nic& nic() { return *nic_; }
  sim::CpuPool& cpu() { return *cpu_; }
  dpu::AliDpu* dpu() { return dpu_.get(); }
  solar::SolarClient* solar() { return solar_.get(); }
  sa::StorageAgent* agent() { return agent_.get(); }
  transport::TcpStack* tcp() { return tcp_.get(); }

  /// Registers this node's metrics, gauges and trace names on `obs`.
  void register_observables(obs::Obs& obs);

 private:
  Cluster& cluster_;
  net::Nic* nic_;
  std::unique_ptr<sim::CpuPool> cpu_;
  std::unique_ptr<dpu::AliDpu> dpu_;
  std::unique_ptr<transport::TcpStack> tcp_;
  std::unique_ptr<rdma::RdmaStack> rdma_;
  std::unique_ptr<sa::StorageAgent> agent_;
  std::unique_ptr<solar::SolarClient> solar_;
  bool pcie_taxed_ = false;  ///< software stack on DPU: internal PCIe x2
};

/// One storage server: block server + the matching server-side stack.
class StorageNode {
 public:
  StorageNode(Cluster& cluster, int index, net::Nic& nic);

  storage::BlockServer& block_server() { return *block_server_; }
  net::Nic& nic() { return *nic_; }
  sim::CpuPool& cpu() { return *cpu_; }

  /// Registers this node's metrics, gauges and trace names on `obs`.
  void register_observables(obs::Obs& obs);

 private:
  net::Nic* nic_;
  std::unique_ptr<sim::CpuPool> cpu_;
  std::unique_ptr<storage::BlockServer> block_server_;
  std::unique_ptr<transport::TcpStack> tcp_;
  std::unique_ptr<rdma::RdmaStack> rdma_;
  std::unique_ptr<solar::SolarServer> solar_;
};

class Cluster {
 public:
  Cluster(sim::Engine& engine, ClusterParams params);
  ~Cluster();

  /// Creates a virtual disk striped over all storage nodes; returns vd id.
  std::uint64_t create_vd(std::uint64_t size_bytes);
  void set_qos(std::uint64_t vd_id, const sa::QosSpec& spec);

  ComputeNode& compute(int i) { return *compute_nodes_[static_cast<std::size_t>(i)]; }
  StorageNode& storage(int i) { return *storage_nodes_[static_cast<std::size_t>(i)]; }
  int num_compute() const { return static_cast<int>(compute_nodes_.size()); }
  int num_storage() const { return static_cast<int>(storage_nodes_.size()); }

  sim::Engine& engine() { return *engine_; }
  net::Network& network() { return *network_; }
  net::Clos& clos() { return clos_; }
  const ClusterParams& params() const { return params_; }
  sa::SegmentTable& segments() { return segments_; }
  sa::QosTable& qos() { return qos_; }
  Rng& rng() { return rng_; }

 private:
  friend class ComputeNode;
  friend class StorageNode;

  /// Names every trace process and registers switch/node observables.
  /// Called once from the ctor when `params.obs` is set.
  void register_observables();

  sim::Engine* engine_;
  ClusterParams params_;
  Rng rng_;
  std::unique_ptr<net::Network> network_;
  net::Clos clos_;
  sa::SegmentTable segments_;
  sa::QosTable qos_;
  sa::BlockCipher cipher_;
  std::vector<std::unique_ptr<ComputeNode>> compute_nodes_;
  std::vector<std::unique_ptr<StorageNode>> storage_nodes_;
  std::uint64_t next_vd_ = 1;
};

}  // namespace repro::ebs
