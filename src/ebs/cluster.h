// End-to-end EBS composition: build a Clos fabric, compute nodes running a
// chosen stack generation, storage nodes running block servers, and virtual
// disks striped across them. Every experiment harness goes through this.
//
// The five generations live behind the `stack` layer (src/stack): each
// compute node owns one `stack::ComputeStack` built by the StackFactory,
// each storage node one server engine per family present in the fleet.
// Fleets are heterogeneous by assigning `ClusterParams::compute_stacks`
// per node (empty = homogeneous `stack`), which is how a rolling upgrade
// from LUNA to SOLAR shares one fabric mid-rollout.
//
// `on_dpu` moves the compute side onto ALI-DPU (bare-metal hosting, §4.3):
// software stacks then run on six wimpy cores and pay the internal-PCIe
// crossings of Fig. 10.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ec/client.h"
#include "ec/maintenance.h"
#include "net/topology.h"
#include "obs/registry.h"
#include "placement/cluster_view.h"
#include "placement/params.h"
#include "qos/admission.h"
#include "sim/shard_context.h"
#include "sim/sharded.h"
#include "stack/factory.h"
#include "storage/block_server.h"

namespace repro::obs {
class Obs;
}

namespace repro::ebs {

using StackKind = stack::StackKind;
using stack::stack_from_string;
using stack::to_string;

struct ClusterParams : stack::StackParams {
  net::ClosConfig topo;
  StackKind stack = StackKind::kLuna;
  /// Per-compute-node stack assignment (node i runs `compute_stacks[i]`).
  /// Empty = homogeneous fleet running `stack`. Shorter than the fleet =
  /// repeats cyclically.
  std::vector<StackKind> compute_stacks;
  storage::BlockServerParams block_server;
  /// Cluster-level placement control plane (src/placement). Disabled =
  /// the historical inline layout, bit-identical.
  placement::PlacementParams placement;
  std::uint64_t seed = 1;
  /// Servers each virtual disk stripes across. 0 (default) = every storage
  /// node, the historical behaviour. Fleet-scale runs set a small width so
  /// a VD's traffic touches a bounded server set instead of all 500.
  int vd_stripe_width = 0;
  /// Optional observability hookup: when set, the cluster hands the
  /// subsystem to the network, names every trace process, and registers
  /// all component metrics/gauges. Null = dark (the default): no obs code
  /// runs anywhere near the hot path.
  obs::Obs* obs = nullptr;

  /// Stack generation compute node `node` runs.
  StackKind stack_for(int node) const {
    if (compute_stacks.empty()) return stack;
    return compute_stacks[static_cast<std::size_t>(node) %
                          compute_stacks.size()];
  }
  /// Server families present in the fleet, in canonical enum order. An
  /// EC fleet (`ec.enabled`) is the single kEcServer family wrapping the
  /// generations' common transport family.
  std::vector<stack::ServerFamily> server_families() const;
  /// Transport family the fleet's generations share — the family an EC
  /// server wraps. Aborts on a mixed-transport EC fleet (EC fragments must
  /// all be reachable through one engine).
  stack::ServerFamily transport_family() const;
  /// True when every compute stack in the fleet is kernel TCP — only then
  /// do storage servers run kernel TCP server-side too.
  bool kernel_generation() const;
};

class Cluster;

/// One compute server: guest entry point + the configured data path.
class ComputeNode {
 public:
  ComputeNode(Cluster& cluster, int index, net::Nic& nic);

  /// Guest-visible I/O submission (the virtio/NVMe doorbell).
  void submit_io(transport::IoRequest io, transport::IoCompleteFn done);

  /// "Consumed cores" on the compute side over `over` ns (Table 1 metric).
  double consumed_cores(TimeNs over) const;
  void reset_accounting();

  net::Nic& nic() { return *nic_; }
  /// The node's data path. Chaos and experiments drive faults through its
  /// chaos hooks instead of poking components by generation.
  stack::ComputeStack& stack() { return *stack_; }
  StackKind stack_kind() const { return stack_->kind(); }

  // Component accessors, delegating to the stack (null when the generation
  // lacks the component).
  sim::CpuPool& cpu() { return *stack_->host_cpu(); }
  dpu::AliDpu* dpu() { return stack_->dpu(); }
  solar::SolarClient* solar() { return stack_->solar(); }
  sa::StorageAgent* agent() { return stack_->agent(); }
  transport::TcpStack* tcp() { return stack_->tcp(); }
  /// The node's admission gate, or null when the fleet runs without the
  /// qos subsystem (`ClusterParams::qos.enabled == false`).
  qos::NodeAdmission* admission() { return admission_.get(); }
  /// The node's EC striping layer, or null on replication fleets.
  ec::EcClient* ec() { return ec_.get(); }
  /// The node's EC maintenance agent, or null on replication fleets.
  ec::MaintenanceAgent* maintenance() { return maintenance_.get(); }

  /// Registers this node's metrics, gauges and trace names on `obs`.
  void register_observables(obs::Obs& obs);

 private:
  net::Nic* nic_;
  std::unique_ptr<stack::ComputeStack> stack_;
  std::unique_ptr<qos::NodeAdmission> admission_;
  std::unique_ptr<ec::EcClient> ec_;
  std::unique_ptr<ec::MaintenanceAgent> maintenance_;
};

/// One storage server: block server + one server-side engine per stack
/// family present in the fleet. With several families the NIC's deliver
/// hook demuxes by destination port (each family listens on its own).
class StorageNode {
 public:
  StorageNode(Cluster& cluster, int index, net::Nic& nic);

  storage::BlockServer& block_server() { return *block_server_; }
  net::Nic& nic() { return *nic_; }
  sim::CpuPool& cpu() { return *cpu_; }

  /// Registers this node's metrics, gauges and trace names on `obs`.
  void register_observables(obs::Obs& obs);

 private:
  net::Nic* nic_;
  std::unique_ptr<sim::CpuPool> cpu_;
  std::unique_ptr<storage::BlockServer> block_server_;
  std::vector<std::unique_ptr<stack::ServerStack>> stacks_;
};

class Cluster {
 public:
  Cluster(sim::Engine& engine, ClusterParams params);
  /// Sharded build: the fabric is partitioned into `se.shards()` node-affine
  /// shards (`params.topo.shards` is overwritten to match), every node is
  /// constructed under its home shard's scope, and the engine lookahead is
  /// set to the minimum cross-shard link propagation delay.
  Cluster(sim::ShardedEngine& se, ClusterParams params);
  ~Cluster();

  /// Creates a virtual disk striped over all storage nodes; returns vd id.
  std::uint64_t create_vd(std::uint64_t size_bytes);
  void set_qos(std::uint64_t vd_id, const sa::QosSpec& spec);
  /// Attaches an SLO contract to a VD. Like QoS specs, contracts must be in
  /// place before traffic starts (admission caches the spec pointer).
  void set_slo(std::uint64_t vd_id, const qos::SloSpec& spec);
  const qos::SloTable& slos() const { return slos_; }

  ComputeNode& compute(int i) { return *compute_nodes_[static_cast<std::size_t>(i)]; }
  StorageNode& storage(int i) { return *storage_nodes_[static_cast<std::size_t>(i)]; }
  int num_compute() const { return static_cast<int>(compute_nodes_.size()); }
  int num_storage() const { return static_cast<int>(storage_nodes_.size()); }

  /// Resets every compute node's core/NIC accounting in one sweep — the
  /// end-of-warmup hook harnesses call before the measured phase. Routed
  /// through a private (always-on) resettable collection, so the observable
  /// registry and its histograms are never disturbed.
  void reset_warmup();

  /// The calling shard's engine. Under a sharded build this routes through
  /// the thread's shard context (exactly like `net::Network::engine()`), so
  /// node components built under `ShardScope(s)` bind shard s's engine and
  /// events armed from shard s's worker stay on shard s.
  sim::Engine& engine() {
    return sharded_ != nullptr ? sharded_->shard(sim::current_shard())
                               : *engine_;
  }
  /// Non-null when built on a ShardedEngine.
  sim::ShardedEngine* sharded() { return sharded_; }
  /// Global simulation time (shard-safe: barrier time when sharded).
  TimeNs now() const {
    return sharded_ != nullptr ? sharded_->now() : engine_->now();
  }
  /// Home shard of compute node `i` (0 for single-shard builds).
  int compute_shard(int i) {
    return compute_nodes_[static_cast<std::size_t>(i)]->nic().shard();
  }
  /// Home shard of storage node `i` (0 for single-shard builds).
  int storage_shard(int i) {
    return storage_nodes_[static_cast<std::size_t>(i)]->nic().shard();
  }
  net::Network& network() { return *network_; }
  net::Clos& clos() { return clos_; }
  const ClusterParams& params() const { return params_; }
  sa::SegmentTable& segments() { return segments_; }
  sa::QosTable& qos() { return qos_; }
  /// The cluster-wide placement/health view. Always populated with rack
  /// membership (even when no policy is enabled) so oracles and benches
  /// can ask rack questions; fragment counts and health flow only when the
  /// placement subsystem is on.
  placement::ClusterView& placement_view() { return view_; }
  Rng& rng() { return rng_; }

 private:
  friend class ComputeNode;
  friend class StorageNode;

  /// Names every trace process and registers switch/node observables.
  /// Called once from the ctor when `params.obs` is set.
  void register_observables();
  /// Shared ctor tail: builds the fabric and the nodes (each under its home
  /// shard's scope when sharded).
  void init();

  sim::Engine* engine_;
  sim::ShardedEngine* sharded_ = nullptr;
  ClusterParams params_;
  Rng rng_;
  std::unique_ptr<net::Network> network_;
  net::Clos clos_;
  sa::SegmentTable segments_;
  placement::ClusterView view_;
  std::unique_ptr<placement::Policy> policy_;
  sa::QosTable qos_;
  qos::SloTable slos_;
  sa::BlockCipher cipher_;
  std::vector<std::unique_ptr<ComputeNode>> compute_nodes_;
  std::vector<std::unique_ptr<StorageNode>> storage_nodes_;
  /// Disabled registry used purely as a Resettable collection for
  /// `reset_warmup` (add_resettable works when disabled; no metric slots
  /// are ever allocated here).
  obs::Registry warmup_registry_{/*enabled=*/false};
  std::uint64_t next_vd_ = 1;
};

}  // namespace repro::ebs
