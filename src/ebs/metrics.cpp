#include "ebs/metrics.h"

namespace repro::ebs {

void MetricSink::record(const transport::IoRequest& io,
                        const transport::IoResult& res, TimeNs issued_at) {
  ++ios_;
  bytes_ += io.len;
  if (res.status != transport::StorageStatus::kOk) ++errors_;
  // Latency excludes QoS queueing (Fig. 6 caption) but is wall time
  // otherwise.
  const TimeNs latency =
      res.completed_at - issued_at - res.trace.qos_wait_ns;
  if (res.completed_at - issued_at >= kHangThreshold) ++hangs_;
  total_.record(latency);
  (io.op == transport::OpType::kRead ? read_total_ : write_total_)
      .record(latency);
  sa_.record(res.trace.sa_ns);
  fn_.record(res.trace.fn_ns);
  bn_.record(res.trace.bn_ns);
  ssd_.record(res.trace.ssd_ns);
}

void MetricSink::register_with(obs::Registry& reg,
                               const obs::Labels& labels) {
  reg.expose_histogram("ebs.latency_total", labels, &total_);
  reg.expose_histogram("ebs.latency_sa", labels, &sa_);
  reg.expose_histogram("ebs.latency_fn", labels, &fn_);
  reg.expose_histogram("ebs.latency_bn", labels, &bn_);
  reg.expose_histogram("ebs.latency_ssd", labels, &ssd_);
  reg.expose_histogram("ebs.latency_read", labels, &read_total_);
  reg.expose_histogram("ebs.latency_write", labels, &write_total_);
  reg.expose_counter("ebs.ios", labels, &ios_);
  reg.expose_counter("ebs.errors", labels, &errors_);
  reg.expose_counter("ebs.hangs", labels, &hangs_);
  reg.expose_counter("ebs.bytes", labels, &bytes_, /*sampled=*/true);
}

void MetricSink::clear() {
  total_.clear();
  sa_.clear();
  fn_.clear();
  bn_.clear();
  ssd_.clear();
  read_total_.clear();
  write_total_.clear();
  ios_ = errors_ = hangs_ = bytes_ = 0;
}

}  // namespace repro::ebs
