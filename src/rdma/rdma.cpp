#include "rdma/rdma.h"

#include <algorithm>

namespace repro::rdma {
namespace {

constexpr std::uint32_t kHeaderBytes = 60;  // eth+ip+udp+bth
constexpr std::uint32_t kAckBytes = 64;

std::uint64_t client_key(net::IpAddr dst) {
  return (static_cast<std::uint64_t>(dst) << 1u) | 0u;
}
std::uint64_t server_key(net::IpAddr ip, std::uint16_t port) {
  return (static_cast<std::uint64_t>(ip) << 17u) |
         (static_cast<std::uint64_t>(port) << 1u) | 1u;
}
std::uint64_t key_of(const net::FlowKey& local_flow) {
  if (local_flow.dst_port == RdmaStack::kServerPort) {
    return client_key(local_flow.dst_ip);
  }
  return server_key(local_flow.dst_ip, local_flow.dst_port);
}

}  // namespace

RdmaStack::RdmaStack(sim::Engine& engine, net::Nic& nic, sim::CpuPool& cpu,
                     RdmaParams params, Rng rng)
    : engine_(engine),
      nic_(nic),
      cpu_(cpu),
      params_(params),
      rng_(rng),
      nic_engine_(engine, "rnic") {
  nic_.set_deliver([this](net::Packet& pkt) { on_packet(pkt); });
}

TimeNs RdmaStack::qp_touch(const Qp& q) {
  const std::uint64_t key = key_of(q.flow);
  auto it = lru_pos_.find(key);
  if (it != lru_pos_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  ++qp_cache_misses_;
  lru_.push_front(key);
  lru_pos_[key] = lru_.begin();
  if (lru_.size() > params_.qp_cache_size) {
    lru_pos_.erase(lru_.back());
    lru_.pop_back();
  }
  return params_.qp_cache_miss_penalty;
}

RdmaStack::Qp& RdmaStack::qp_to(net::IpAddr dst) {
  const std::uint64_t key = client_key(dst);
  auto it = qps_.find(key);
  if (it == qps_.end()) {
    Qp q;
    q.flow = net::FlowKey{nic_.ip(), dst, next_port_++, kServerPort,
                          net::Proto::kUdp};
    it = qps_.emplace(key, std::move(q)).first;
  }
  return it->second;
}

RdmaStack::Qp& RdmaStack::qp_for_flow(const net::FlowKey& remote_to_local) {
  net::FlowKey local{remote_to_local.dst_ip, remote_to_local.src_ip,
                     remote_to_local.dst_port, remote_to_local.src_port,
                     net::Proto::kUdp};
  const std::uint64_t key = key_of(local);
  auto it = qps_.find(key);
  if (it == qps_.end()) {
    Qp q;
    q.flow = local;
    it = qps_.emplace(key, std::move(q)).first;
  }
  return it->second;
}

void RdmaStack::call(net::IpAddr dst, transport::StorageRequest request,
                     transport::ResponseFn on_response) {
  const std::uint64_t rpc_id = next_rpc_id_++;
  request.rpc_id = rpc_id;
  outstanding_rpcs_[rpc_id] = std::move(on_response);
  Message m;
  m.bytes = request.wire_bytes();
  m.is_request = true;
  m.rpc_id = rpc_id;
  m.payload = std::move(request);
  send_message(qp_to(dst), std::move(m));
}

void RdmaStack::send_message(Qp& q, Message msg) {
  auto shared = net::make_payload<Message>(std::move(msg));
  // Posting the WQE costs a verb on the CPU; everything after is NIC work.
  cpu_.submit(key_of(q.flow), params_.per_verb_cpu, [this, &q, shared] {
    std::uint64_t remaining = shared->bytes;
    while (remaining > 0) {
      const auto take = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(remaining, params_.mtu));
      remaining -= take;
      Wire w;
      w.flow = q.flow;
      w.bytes = take;
      if (remaining == 0) {
        w.msg = shared;
        w.msg_last = true;
      }
      q.pending.push_back(std::move(w));
    }
    pump(q);
  });
}

void RdmaStack::pump(Qp& q) {
  while (!q.pending.empty() &&
         q.next_seq - q.send_base < params_.window) {
    Wire w = std::move(q.pending.front());
    q.pending.pop_front();
    w.seq = q.next_seq++;
    q.outstanding.emplace(w.seq, SentMeta{w.bytes, w.msg, w.msg_last});
    transmit(q, std::move(w));
  }
  arm_rto(q);
}

void RdmaStack::transmit(Qp& q, Wire w) {
  const TimeNs nic_work = params_.nic_tx_latency + qp_touch(q);
  auto shared = net::make_payload<Wire>(std::move(w));
  nic_engine_.run(nic_work, [this, shared] {
    net::PacketPtr pkt = nic_.make_packet();
    pkt->flow = shared->flow;
    pkt->size_bytes = shared->bytes + kHeaderBytes;
    net::set_app(*pkt, shared);
    nic_.send_packet(std::move(pkt));
  });
}

void RdmaStack::on_packet(net::Packet& pkt) {
  auto w = net::app_as<Wire>(pkt);
  if (!w) return;
  // RNIC-side receive processing (+ possible QP-context fetch).
  Qp& q = qp_for_flow(w->flow);
  nic_engine_.run(ns(150) + qp_touch(q), [this, w] { on_wire(*w); });
}

void RdmaStack::on_wire(const Wire& w) {
  Qp& q = qp_for_flow(w.flow);
  switch (w.kind) {
    case Wire::Kind::kData: {
      if (w.seq == q.rcv_next) {
        ++q.rcv_next;
        if (w.msg_last && w.msg) deliver(q, w.msg);
        Wire ack;
        ack.flow = q.flow;
        ack.kind = Wire::Kind::kAck;
        ack.ack_seq = q.rcv_next;
        net::PacketPtr pkt = nic_.make_packet();
        pkt->flow = q.flow;
        pkt->size_bytes = kAckBytes;
        net::emplace_app<Wire>(*pkt, std::move(ack));
        nic_.send_packet(std::move(pkt));
      } else if (w.seq > q.rcv_next) {
        // Out of order: RC (go-back-N generation) drops and NAKs.
        ++naks_;
        Wire nak;
        nak.flow = q.flow;
        nak.kind = Wire::Kind::kNak;
        nak.ack_seq = q.rcv_next;
        net::PacketPtr pkt = nic_.make_packet();
        pkt->flow = q.flow;
        pkt->size_bytes = kAckBytes;
        net::emplace_app<Wire>(*pkt, std::move(nak));
        nic_.send_packet(std::move(pkt));
      } else {
        // Duplicate of already-received data: re-ACK.
        Wire ack;
        ack.flow = q.flow;
        ack.kind = Wire::Kind::kAck;
        ack.ack_seq = q.rcv_next;
        net::PacketPtr pkt = nic_.make_packet();
        pkt->flow = q.flow;
        pkt->size_bytes = kAckBytes;
        net::emplace_app<Wire>(*pkt, std::move(ack));
        nic_.send_packet(std::move(pkt));
      }
      return;
    }
    case Wire::Kind::kAck: {
      if (w.ack_seq > q.send_base) {
        q.outstanding.erase(q.outstanding.begin(),
                            q.outstanding.lower_bound(w.ack_seq));
        q.send_base = w.ack_seq;
        q.backoff = 0;
        arm_rto(q, /*restart=*/true);
        pump(q);
      }
      return;
    }
    case Wire::Kind::kNak: {
      // One rewind per loss event: a burst of NAKs from the same gap must
      // not trigger a retransmission storm.
      if (w.ack_seq >= q.send_base &&
          engine_.now() - q.last_rewind_at > us(50)) {
        rewind(q);
      }
      return;
    }
  }
}

void RdmaStack::rewind(Qp& q) {
  // Go-back-N: retransmit everything outstanding, in order.
  ++rewinds_;
  q.last_rewind_at = engine_.now();
  if (q.rto_timer != 0) {
    engine_.cancel(q.rto_timer);
    q.rto_timer = 0;  // force the trailing arm_rto to restart the timer
  }
  for (const auto& [seq, meta] : q.outstanding) {
    Wire w;
    w.flow = q.flow;
    w.seq = seq;
    w.bytes = meta.bytes;
    w.msg = meta.msg;
    w.msg_last = meta.msg_last;
    transmit(q, std::move(w));
  }
  arm_rto(q);
}

void RdmaStack::arm_rto(Qp& q, bool restart) {
  // See TcpStack::arm_rto: only ACK progress or a fired RTO restarts the
  // timer; new sends must not reset the countdown.
  if (q.outstanding.empty()) {
    if (q.rto_timer != 0) {
      engine_.cancel(q.rto_timer);
      q.rto_timer = 0;
    }
    return;
  }
  if (q.rto_timer != 0) {
    if (!restart) return;
    engine_.cancel(q.rto_timer);
    q.rto_timer = 0;
  }
  TimeNs rto = params_.retransmit_timeout;
  for (int i = 0; i < std::min(q.backoff, params_.max_retry_backoff); ++i) {
    rto *= 2;
  }
  q.rto_timer = engine_.schedule_after(rto, [this, &q] {
    q.rto_timer = 0;
    if (q.outstanding.empty()) return;
    ++q.backoff;
    rewind(q);  // rewind re-arms with the increased backoff
  });
}

void RdmaStack::deliver(Qp& q, const net::PayloadHandle<Message>& m) {
  cpu_.submit(key_of(q.flow), params_.per_verb_cpu, [this, &q, m] {
    if (m->is_request) {
      if (!handler_) return;
      auto req = std::any_cast<transport::StorageRequest>(m->payload);
      const std::uint64_t rpc_id = m->rpc_id;
      handler_(std::move(req),
               [this, &q, rpc_id](transport::StorageResponse resp) {
                 resp.rpc_id = rpc_id;
                 Message out;
                 out.bytes = resp.wire_bytes();
                 out.is_request = false;
                 out.rpc_id = rpc_id;
                 out.payload = std::move(resp);
                 send_message(q, std::move(out));
               });
    } else {
      auto resp = std::any_cast<transport::StorageResponse>(m->payload);
      auto it = outstanding_rpcs_.find(m->rpc_id);
      if (it == outstanding_rpcs_.end()) return;
      transport::ResponseFn cb = std::move(it->second);
      outstanding_rpcs_.erase(it);
      cb(std::move(resp));
    }
  });
}

}  // namespace repro::rdma
