// RDMA RC transport model (the hardware alternative the paper evaluated
// and rejected for FN, §3.1, and the Fig. 10(b)/14/15 baseline).
//
// What it gets right for the reproduction:
//  * Network processing is offloaded: CPU pays only a few hundred ns per
//    verb/completion, never per packet.
//  * Loss recovery is go-back-N (the RNIC generation of §3.1): the receiver
//    only accepts in-order packets; a gap triggers a NAK and the sender
//    rewinds — expensive under loss.
//  * Scalability cliff: the RNIC caches a bounded number of QP contexts
//    (~5000 in the paper's 2017-era hardware). Misses stall the NIC
//    pipeline per packet, so throughput collapses as connections grow.
//  * On a DPU (Fig. 10(b)) the data path still crosses the internal PCIe
//    twice, because only the network stack is offloaded, not the SA.
#pragma once

#include <any>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <unordered_map>

#include "common/rng.h"
#include "net/nic.h"
#include "sim/cpu.h"
#include "sim/engine.h"
#include "sim/pcie.h"
#include "transport/rpc.h"

namespace repro::rdma {

struct RdmaParams {
  std::uint32_t mtu = 4096;
  std::uint32_t window = 64;        ///< in-flight packets per QP
  TimeNs per_verb_cpu = ns(600);    ///< post send / poll completion
  TimeNs nic_tx_latency = ns(600);  ///< WQE fetch + DMA setup
  std::size_t qp_cache_size = 5000; ///< QP contexts cached on the NIC
  TimeNs qp_cache_miss_penalty = us(3);  ///< context fetch over PCIe
  TimeNs retransmit_timeout = ms(1);     ///< RC timeout before rewind
  int max_retry_backoff = 8;
};

/// RDMA endpoint bound to a NIC. (On a DPU, the internal-PCIe crossings of
/// Fig. 10(b) are charged by the composition layer in src/ebs, which is
/// also where LUNA pays them — the transport itself is host-agnostic.)
class RdmaStack : public transport::RpcTransport, public transport::RpcServer {
 public:
  static constexpr std::uint16_t kServerPort = 9010;

  RdmaStack(sim::Engine& engine, net::Nic& nic, sim::CpuPool& cpu,
            RdmaParams params, Rng rng);

  void call(net::IpAddr dst, transport::StorageRequest request,
            transport::ResponseFn on_response) override;
  std::string name() const override { return "rdma"; }
  void set_handler(transport::ServerHandlerFn handler) override {
    handler_ = std::move(handler);
  }

  std::uint64_t rewinds() const { return rewinds_; }
  std::uint64_t naks() const { return naks_; }
  std::uint64_t qp_cache_misses() const { return qp_cache_misses_; }
  std::size_t open_qps() const { return qps_.size(); }

 private:
  struct Message {
    std::any payload;
    std::uint64_t bytes = 0;
    bool is_request = false;
    std::uint64_t rpc_id = 0;
  };

  struct Wire {  // data packet, ACK or NAK
    net::FlowKey flow;
    std::uint64_t seq = 0;
    std::uint32_t bytes = 0;
    enum class Kind : std::uint8_t { kData, kAck, kNak } kind = Kind::kData;
    std::uint64_t ack_seq = 0;  ///< cumulative for ACK; expected for NAK
    net::PayloadHandle<Message> msg;
    bool msg_last = false;
  };

  struct SentMeta {
    std::uint32_t bytes = 0;
    net::PayloadHandle<Message> msg;
    bool msg_last = false;
  };

  struct Qp {
    net::FlowKey flow;
    // sender
    std::uint64_t next_seq = 0;
    std::uint64_t send_base = 0;
    std::map<std::uint64_t, SentMeta> outstanding;
    std::deque<Wire> pending;
    sim::TimerId rto_timer = 0;
    int backoff = 0;
    TimeNs last_rewind_at = -kSecond;  ///< NAK-storm throttle
    // receiver (strictly in-order)
    std::uint64_t rcv_next = 0;
  };

  Qp& qp_to(net::IpAddr dst);
  Qp& qp_for_flow(const net::FlowKey& remote_to_local);
  void send_message(Qp& q, Message msg);
  void pump(Qp& q);
  void transmit(Qp& q, Wire w);
  void on_packet(net::Packet& pkt);
  void on_wire(const Wire& w);
  void rewind(Qp& q);
  void arm_rto(Qp& q, bool restart = false);
  /// Charges the QP-context-cache cost for touching this QP.
  TimeNs qp_touch(const Qp& q);
  void deliver(Qp& q, const net::PayloadHandle<Message>& m);

  sim::Engine& engine_;
  net::Nic& nic_;
  sim::CpuPool& cpu_;
  RdmaParams params_;
  Rng rng_;
  /// The RNIC's processing pipeline as a serial resource: per-packet work
  /// and QP-cache-miss stalls serialize here, which is exactly what makes
  /// throughput collapse beyond the cache size.
  sim::CpuCore nic_engine_;
  transport::ServerHandlerFn handler_;
  std::unordered_map<std::uint64_t, Qp> qps_;
  std::unordered_map<std::uint64_t, transport::ResponseFn> outstanding_rpcs_;
  // NIC QP-context cache (LRU over QP keys).
  std::list<std::uint64_t> lru_;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      lru_pos_;
  std::uint16_t next_port_ = 30000;
  std::uint64_t next_rpc_id_ = 1;
  std::uint64_t rewinds_ = 0;
  std::uint64_t naks_ = 0;
  std::uint64_t qp_cache_misses_ = 0;
};

}  // namespace repro::rdma
