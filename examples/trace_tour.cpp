// Trace tour: follow one 4KB write (and its read-back) through the SOLAR
// data path using the observability subsystem — guest NVMe submit, SA/QoS,
// FPGA pipeline, internal PCIe, per-hop fabric traversal (folded from the
// INT trail), block server, SSD — then render the causal span tree and
// export a Perfetto-loadable Chrome trace.
//
//   $ ./build/examples/trace_tour
//   $ # then open trace_tour.trace.json at https://ui.perfetto.dev
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "ebs/cluster.h"
#include "obs/export.h"
#include "obs/obs.h"

using namespace repro;

namespace {

// Indented tree render of the flight recorder, children ordered by start
// time. Spans reference parents by id; id 0 is the root sentinel.
void print_tree(const obs::Tracer& tracer) {
  std::map<std::uint64_t, obs::SpanRecord> by_id;
  std::map<std::uint64_t, std::vector<std::uint64_t>> children;
  tracer.for_each([&](const obs::SpanRecord& r) {
    by_id[r.id] = r;
    children[r.parent].push_back(r.id);
  });
  for (auto& [parent, kids] : children) {
    std::sort(kids.begin(), kids.end(),
              [&](std::uint64_t a, std::uint64_t b) {
                return by_id[a].t0 != by_id[b].t0 ? by_id[a].t0 < by_id[b].t0
                                                  : a < b;
              });
  }

  auto print = [&](auto&& self, std::uint64_t id, int depth) -> void {
    const obs::SpanRecord& r = by_id[id];
    std::string args;
    if (r.arg_name != nullptr) {
      args += std::string("  ") + r.arg_name + "=" + std::to_string(r.arg);
    }
    if (r.arg2_name != nullptr) {
      args += std::string("  ") + r.arg2_name + "=" + std::to_string(r.arg2);
    }
    std::printf("%*s%-14s  [%8.3f us .. %8.3f us]  dur %8.3f us  pid %u%s\n",
                depth * 2, "", r.name, to_us(r.t0), to_us(r.t1),
                to_us(r.t1 - r.t0), r.pid, args.c_str());
    for (std::uint64_t kid : children[id]) self(self, kid, depth + 1);
  };
  for (std::uint64_t root : children[0]) print(print, root, 0);
}

}  // namespace

int main() {
  // 1. Observability first: registry + tracer + sampler behind one config.
  //    A null params.obs (the default) runs the identical simulation dark.
  obs::ObsConfig oc;
  oc.trace_capacity = 1 << 14;
  oc.sample_interval = us(10);
  obs::Obs obs(oc);

  // 2. The quickstart cluster, instrumented: pass the Obs pointer in
  //    ClusterParams and attach the sampler to the engine.
  sim::Engine engine;
  ebs::ClusterParams params;
  params.topo.compute_servers = 2;
  params.topo.storage_servers = 4;
  params.topo.servers_per_rack = 4;
  params.stack = ebs::StackKind::kSolar;
  params.obs = &obs;
  ebs::Cluster cluster(engine, params);
  obs.attach(engine);
  const std::uint64_t vd = cluster.create_vd(1ull << 30);

  // 3. One 4KB write, then read it back — each produces one span tree.
  for (auto op : {transport::OpType::kWrite, transport::OpType::kRead}) {
    transport::IoRequest io;
    io.vd_id = vd;
    io.op = op;
    io.offset = 1 << 20;
    io.len = 4096;
    if (op == transport::OpType::kWrite) {
      io.payload = transport::make_placeholder_blocks(io.offset, io.len, 4096);
    }
    bool finished = false;
    engine.at(engine.now(), [&] {
      cluster.compute(0).submit_io(std::move(io),
                                   [&](transport::IoResult) { finished = true; });
    });
    while (!finished && engine.step()) {
    }
  }
  engine.run_until(engine.now() + ms(1));

  // 4. Walk the causal tree. The roots are the two io.* spans; under each:
  //    rpc.* (replication round) -> blk.net (one block's network leg, with
  //    fabric.hop children folded from the INT trail) and the server-side
  //    server.cpu / bs.* / ssd.* stages.
  std::printf("=== span tree: 4KB write + read on SOLAR (%zu spans) ===\n",
              obs.tracer().size());
  print_tree(obs.tracer());

  // 5. Export artifacts: Chrome trace for ui.perfetto.dev, metric snapshot,
  //    and the sampled time series the probe hook collected along the way.
  obs::export_chrome_trace("trace_tour.trace.json", obs.tracer());
  obs::export_metrics_json("trace_tour.metrics.json", obs.registry());
  obs::export_series_csv("trace_tour.series.csv", obs.registry(),
                         obs.sampler());
  std::printf("\nwrote trace_tour.trace.json (load in ui.perfetto.dev), "
              "trace_tour.metrics.json, trace_tour.series.csv "
              "(%llu samples)\n",
              static_cast<unsigned long long>(obs.sampler().samples_taken()));
  return 0;
}
