// Database paging workload (the scenario §3 opens with): a MySQL-style
// guest committing 16 KB pages with strict durability, plus a sequential
// redo log — the latency-sensitive small-I/O pattern that made the EBS
// network the bottleneck once SSDs arrived.
//
// Runs the same workload against LUNA and SOLAR and prints the commit
// latency distribution each delivers to the "database".
#include <cstdio>

#include "ebs/cluster.h"
#include "workload/fio.h"

using namespace repro;

namespace {

struct DbResult {
  double page_p50, page_p99;
  double log_p50, log_p99;
  double kiops;
};

DbResult run(ebs::StackKind stack) {
  sim::Engine engine;
  ebs::ClusterParams params;
  params.topo.compute_servers = 1;
  params.topo.storage_servers = 6;
  params.topo.servers_per_rack = 6;
  params.stack = stack;
  params.on_dpu = true;  // bare-metal hosting
  params.block_server.store_payload = false;
  ebs::Cluster cluster(engine, params);
  const std::uint64_t data_vd = cluster.create_vd(4ull << 30);
  const std::uint64_t log_vd = cluster.create_vd(1ull << 30);

  auto submit = [&](transport::IoRequest io, transport::IoCompleteFn done) {
    cluster.compute(0).submit_io(std::move(io), std::move(done));
  };

  // Buffer-pool eviction: random 16K page writes, depth 8 (LRU flusher).
  workload::FioConfig pages;
  pages.vd_id = data_vd;
  pages.vd_size = 4ull << 30;
  pages.block_size = 16384;
  pages.iodepth = 8;
  pages.read_fraction = 0.35;  // some pages fault back in
  workload::FioJob page_job(engine, submit, pages, Rng(1));

  // Redo log: sequential 4K appends, depth 1 — the fsync path every
  // transaction waits on.
  workload::FioConfig log;
  log.vd_id = log_vd;
  log.vd_size = 1ull << 30;
  log.block_size = 4096;
  log.iodepth = 1;
  log.sequential = true;
  log.read_fraction = 0.0;
  workload::FioJob log_job(engine, submit, log, Rng(2));

  engine.at(0, [&] {
    page_job.start();
    log_job.start();
  });
  engine.run_until(ms(30));  // warmup
  page_job.metrics().clear();
  log_job.metrics().clear();
  engine.run_until(ms(130));
  page_job.stop();
  log_job.stop();

  DbResult r;
  r.page_p50 = to_us(page_job.metrics().total().percentile(0.5));
  r.page_p99 = to_us(page_job.metrics().total().percentile(0.99));
  r.log_p50 = to_us(log_job.metrics().total().percentile(0.5));
  r.log_p99 = to_us(log_job.metrics().total().percentile(0.99));
  r.kiops = (page_job.metrics().iops(ms(100)) +
             log_job.metrics().iops(ms(100))) /
            1e3;
  return r;
}

}  // namespace

int main() {
  std::printf("Database paging workload: 16K page flushes + sequential 4K "
              "redo log\n");
  std::printf("%-8s %14s %14s %14s %14s %10s\n", "stack", "page p50 (us)",
              "page p99 (us)", "log p50 (us)", "log p99 (us)", "KIOPS");
  for (ebs::StackKind stack :
       {ebs::StackKind::kLuna, ebs::StackKind::kSolar}) {
    const DbResult r = run(stack);
    std::printf("%-8s %14.1f %14.1f %14.1f %14.1f %10.1f\n",
                ebs::to_string(stack).c_str(), r.page_p50, r.page_p99,
                r.log_p50, r.log_p99, r.kiops);
  }
  std::printf("\nThe redo-log fsync latency is what a transaction commit "
              "waits on; SOLAR's\nhardware data path takes the storage "
              "agent out of that critical path (Fig. 6).\n");
  return 0;
}
