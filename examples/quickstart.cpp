// Quickstart: build a small EBS deployment with the SOLAR stack, create a
// virtual disk, write and read it back, and print the per-component
// latency trace — the whole public API in ~60 lines.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "ebs/cluster.h"

using namespace repro;

int main() {
  // 1. A simulation engine and a cluster: 2 compute + 4 storage servers in
  //    a Clos fabric, compute side on ALI-DPU running SOLAR.
  sim::Engine engine;
  ebs::ClusterParams params;
  params.topo.compute_servers = 2;
  params.topo.storage_servers = 4;
  params.topo.servers_per_rack = 4;
  params.stack = ebs::StackKind::kSolar;
  params.block_server.store_payload = true;  // keep real bytes around
  ebs::Cluster cluster(engine, params);

  // 2. A 1 GiB virtual disk, striped in 2 MB segments over the storage
  //    nodes, with a QoS policy.
  const std::uint64_t vd = cluster.create_vd(1ull << 30);
  sa::QosSpec qos;
  qos.iops_limit = 100000;
  qos.bandwidth_limit = 1e9;
  cluster.set_qos(vd, qos);

  // 3. Write 16 KB of real data at offset 1 MiB.
  transport::IoRequest write;
  write.vd_id = vd;
  write.op = transport::OpType::kWrite;
  write.offset = 1 << 20;
  write.len = 16384;
  write.payload = transport::make_placeholder_blocks(write.offset, write.len,
                                                     4096);
  Rng rng(2022);
  for (auto& blk : write.payload) {
    blk.data.resize(blk.len);
    for (auto& b : blk.data) b = static_cast<std::uint8_t>(rng.next());
  }
  auto expected = write.payload;

  transport::IoResult write_result;
  engine.at(0, [&] {
    cluster.compute(0).submit_io(std::move(write), [&](transport::IoResult r) {
      write_result = std::move(r);
    });
  });
  engine.run();
  std::printf("WRITE: status=%d, %.1f us end-to-end "
              "(SA %.1f | FN %.1f | BN %.1f | SSD %.1f)\n",
              static_cast<int>(write_result.status),
              to_us(write_result.trace.total_ns()),
              to_us(write_result.trace.sa_ns), to_us(write_result.trace.fn_ns),
              to_us(write_result.trace.bn_ns),
              to_us(write_result.trace.ssd_ns));

  // 4. Read it back and verify every byte survived the trip through the
  //    FPGA pipeline, the fabric, and three replicas.
  transport::IoRequest read;
  read.vd_id = vd;
  read.op = transport::OpType::kRead;
  read.offset = 1 << 20;
  read.len = 16384;
  transport::IoResult read_result;
  engine.at(engine.now(), [&] {
    cluster.compute(0).submit_io(std::move(read), [&](transport::IoResult r) {
      read_result = std::move(r);
    });
  });
  engine.run();

  bool intact = read_result.read_data.size() == expected.size();
  for (std::size_t i = 0; intact && i < expected.size(); ++i) {
    intact = read_result.read_data[i].data == expected[i].data;
  }
  std::printf("READ : status=%d, %.1f us end-to-end, data intact: %s\n",
              static_cast<int>(read_result.status),
              to_us(read_result.trace.total_ns()), intact ? "yes" : "NO");
  return intact ? 0 : 1;
}
