// Failure drill: replay the paper's §3.3 incident — a silently failing
// switch blackholing part of the traffic — against LUNA and SOLAR, and
// narrate what each stack experiences second by second.
//
// LUNA's connections are pinned to their 5-tuple: I/Os whose path crosses
// the dead element hang until operators repair it (minutes). SOLAR's
// multi-path transport times out per packet, redraws the path's UDP source
// port, and recovers within milliseconds (Table 2).
#include <cstdio>

#include "ebs/cluster.h"
#include "workload/fio.h"

using namespace repro;

namespace {

void drill(ebs::StackKind stack) {
  std::printf("\n=== %s under a silent ToR blackhole ===\n",
              ebs::to_string(stack).c_str());
  sim::Engine engine;
  ebs::ClusterParams params;
  params.topo.compute_servers = 4;
  params.topo.storage_servers = 4;
  params.topo.servers_per_rack = 2;
  params.stack = stack;
  params.block_server.store_payload = false;
  ebs::Cluster cluster(engine, params);

  std::vector<std::unique_ptr<workload::FioJob>> jobs;
  for (int node = 0; node < cluster.num_compute(); ++node) {
    const std::uint64_t vd = cluster.create_vd(1ull << 30);
    workload::FioConfig cfg;
    cfg.vd_id = vd;
    cfg.iodepth = 4;
    cfg.read_fraction = 0.2;
    jobs.push_back(std::make_unique<workload::FioJob>(
        engine,
        [&cluster, node](transport::IoRequest io,
                         transport::IoCompleteFn done) {
          cluster.compute(node).submit_io(std::move(io), std::move(done));
        },
        cfg, Rng(10 + static_cast<std::uint64_t>(node))));
    engine.at(0, [j = jobs.back().get()] { j->start(); });
  }

  auto report = [&](const char* phase) {
    std::uint64_t ios = 0, hangs = 0;
    double worst_ms = 0;
    for (auto& j : jobs) {
      ios += j->metrics().ios();
      hangs += j->metrics().hangs();
      worst_ms = std::max(worst_ms, to_ms(j->metrics().total().max()));
      j->metrics().clear();
    }
    std::printf("  [t=%6.2fs] %-28s completed=%6llu  hangs(>=1s)=%4llu  "
                "worst=%.1f ms\n",
                to_sec(engine.now()), phase,
                static_cast<unsigned long long>(ios),
                static_cast<unsigned long long>(hangs), worst_ms);
  };

  engine.run_until(seconds(1));
  report("healthy baseline");

  // A line card starts blackholing half the flows through ToR 0 — carrier
  // stays up, routing sees nothing (the §3.3 incident pattern).
  auto* tor = cluster.clos().compute_tors[0];
  cluster.network().set_blackhole(*tor, 0.5);
  std::printf("  [t=%6.2fs] *** ToR line card fails silently (50%% of "
              "flows blackholed) ***\n", to_sec(engine.now()));

  engine.run_until(engine.now() + seconds(3));
  report("during failure (3s)");

  cluster.network().set_blackhole(*tor, 0.0);
  std::printf("  [t=%6.2fs] *** operators isolate the card ***\n",
              to_sec(engine.now()));
  for (auto& j : jobs) j->stop();
  engine.run_until(engine.now() + seconds(30));
  report("after repair (drained)");

  if (stack == ebs::StackKind::kSolar) {
    const auto& stats = cluster.compute(0).solar()->stats();
    std::printf("  solar path redraws: %llu, packet timeouts: %llu — "
                "recovery happened here, not in network ops\n",
                static_cast<unsigned long long>(stats.path_redraws),
                static_cast<unsigned long long>(stats.pkt_timeouts));
  }
}

}  // namespace

int main() {
  std::printf("Failure drill: silent partial blackhole (the class of "
              "failure that caused\nthe paper's 42-minute incident, §3.3)\n");
  drill(ebs::StackKind::kLuna);
  drill(ebs::StackKind::kSolar);
  std::printf("\nLUNA hangs until ops repair the device; SOLAR reroutes in "
              "milliseconds and\nnever surfaces an I/O hang to the guest "
              "(Table 2).\n");
  return 0;
}
