// DPU offload tour (§4.6): the storage-agent data path as a P4-style
// match-action pipeline, running on real wire bytes.
//
// Walks a 4 KB block through the WRITE TX pipeline (QoS -> Block -> CRC ->
// SEC -> PktGen), puts the result on the "wire", then walks the response
// through the READ RX pipeline (Addr -> SEC -> CRC -> DMA). Also prints
// the FPGA resource bill for the whole thing (Table 3).
#include <cstdio>

#include "common/crc32.h"
#include "common/rng.h"
#include "dpu/resources.h"
#include "p4/solar_program.h"
#include "proto/headers.h"
#include "sa/segment_table.h"

using namespace repro;

int main() {
  std::printf("SOLAR's SA data path expressed as P4 pipelines (§4.6)\n\n");

  p4::SolarProgramConfig cfg;
  cfg.encrypt = true;

  // --- control plane: populate the match-action tables -------------------
  auto tx = p4::make_write_tx_pipeline(cfg);
  tx.table("qos")->add_entry({/*vd=*/7}, "qos_pass");
  tx.table("block")->add_entry({7, /*segment_index=*/3}, "route",
                               {/*segment_id=*/1234, /*server=*/42});

  auto rx = p4::make_read_rx_pipeline(cfg);
  rx.table("addr")->add_entry({/*rpc=*/99, /*pkt=*/0}, "dma",
                              {/*guest addr=*/0xFEED0000ull});

  // --- WRITE TX: guest page in, routed+encrypted packet out --------------
  Rng rng(3);
  p4::PacketCtx wctx;
  wctx.fields["nvme.vd"] = 7;
  wctx.fields["nvme.lba"] = 3ull * sa::SegmentTable::kSegmentBytes;
  wctx.fields["nvme.segment_index"] = 3;
  wctx.payload.resize(4096);
  for (auto& b : wctx.payload) b = static_cast<std::uint8_t>(rng.next());
  const auto plaintext = wctx.payload;

  if (!tx.process(wctx)) {
    std::printf("TX pipeline dropped the block: %s\n",
                wctx.drop_reason.c_str());
    return 1;
  }
  std::printf("WRITE TX: verdict=%s  segment=%llu  server=%llu  "
              "crc=0x%08llx  payload %s\n",
              wctx.verdict.c_str(),
              static_cast<unsigned long long>(wctx.field("route.segment_id")),
              static_cast<unsigned long long>(wctx.field("route.server")),
              static_cast<unsigned long long>(wctx.field("ebs.payload_crc")),
              wctx.payload == plaintext ? "PLAINTEXT (bug!)" : "encrypted");

  // --- the wire: encode a read response carrying that block --------------
  proto::RpcHeader rpc;
  rpc.rpc_id = 99;
  rpc.pkt_id = 0;
  rpc.msg_type = proto::RpcMsgType::kReadResponse;
  proto::EbsHeader ebs;
  ebs.vd_id = 7;
  ebs.lba = wctx.field("nvme.lba");
  ebs.block_len = 4096;
  ebs.payload_crc =
      static_cast<std::uint32_t>(wctx.field("ebs.payload_crc"));
  ebs.op = proto::EbsOp::kRead;
  const auto wire_bytes = encode_solar_packet(rpc, ebs, wctx.payload);
  std::printf("WIRE    : %zu bytes = RPC HDR(%zu) | EBS HDR(%zu) | 4K "
              "block\n",
              wire_bytes.size(), proto::RpcHeader::kWireSize,
              proto::EbsHeader::kWireSize);

  // --- READ RX: packet in, decrypted verified block DMA'd to the guest ---
  p4::PacketCtx rctx;
  rctx.bytes = wire_bytes;
  if (!rx.process(rctx)) {
    std::printf("RX pipeline dropped the packet: %s\n",
                rctx.drop_reason.c_str());
    return 1;
  }
  std::printf("READ RX : verdict=%s  dma_addr=0x%llx  decrypted+verified "
              "round trip: %s\n",
              rctx.verdict.c_str(),
              static_cast<unsigned long long>(rctx.field("dma_addr")),
              rctx.payload == plaintext ? "intact" : "CORRUPT");

  // Corruption demo: one bit flip anywhere drops at the CRC stage.
  p4::PacketCtx bad;
  bad.bytes = wire_bytes;
  bad.bytes[bad.bytes.size() - 100] ^= 0x04;
  const bool accepted = rx.process(bad);
  std::printf("TAMPERED: accepted=%s (drop reason: %s)\n",
              accepted ? "yes (bug!)" : "no",
              bad.drop_reason.c_str());

  // --- Table 3: what this costs in the FPGA ------------------------------
  std::printf("\nFPGA bill for these pipelines (Table 3 cost model):\n");
  for (const auto& m : dpu::solar_resource_usage(dpu::SolarHwConfig{})) {
    std::printf("  %-6s %6.1f%% LUT  %6.1f%% BRAM\n", m.name.c_str(),
                m.lut_pct, m.bram_pct);
  }
  std::printf("\nThe whole EBS data path fits in <10%% of the FPGA — and "
              "maps 1:1 onto the\nmatch-action model commodity DPUs expose "
              "via P4 (§4.6).\n");
  return rctx.payload == plaintext && !accepted ? 0 : 1;
}
