# Empty dependencies file for database_workload.
# This may be replaced when dependencies are built.
