file(REMOVE_RECURSE
  "CMakeFiles/database_workload.dir/database_workload.cpp.o"
  "CMakeFiles/database_workload.dir/database_workload.cpp.o.d"
  "database_workload"
  "database_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
