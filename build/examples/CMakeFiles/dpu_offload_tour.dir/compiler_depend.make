# Empty compiler generated dependencies file for dpu_offload_tour.
# This may be replaced when dependencies are built.
