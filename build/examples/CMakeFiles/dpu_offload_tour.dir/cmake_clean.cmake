file(REMOVE_RECURSE
  "CMakeFiles/dpu_offload_tour.dir/dpu_offload_tour.cpp.o"
  "CMakeFiles/dpu_offload_tour.dir/dpu_offload_tour.cpp.o.d"
  "dpu_offload_tour"
  "dpu_offload_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpu_offload_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
