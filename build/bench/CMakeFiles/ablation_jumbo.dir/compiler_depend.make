# Empty compiler generated dependencies file for ablation_jumbo.
# This may be replaced when dependencies are built.
