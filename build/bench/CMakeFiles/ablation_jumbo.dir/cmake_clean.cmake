file(REMOVE_RECURSE
  "CMakeFiles/ablation_jumbo.dir/ablation_jumbo.cpp.o"
  "CMakeFiles/ablation_jumbo.dir/ablation_jumbo.cpp.o.d"
  "ablation_jumbo"
  "ablation_jumbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_jumbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
