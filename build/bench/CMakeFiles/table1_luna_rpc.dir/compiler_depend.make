# Empty compiler generated dependencies file for table1_luna_rpc.
# This may be replaced when dependencies are built.
