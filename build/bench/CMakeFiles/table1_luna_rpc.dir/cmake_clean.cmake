file(REMOVE_RECURSE
  "CMakeFiles/table1_luna_rpc.dir/table1_luna_rpc.cpp.o"
  "CMakeFiles/table1_luna_rpc.dir/table1_luna_rpc.cpp.o.d"
  "table1_luna_rpc"
  "table1_luna_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_luna_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
