# Empty dependencies file for fig08_io_hangs_luna.
# This may be replaced when dependencies are built.
