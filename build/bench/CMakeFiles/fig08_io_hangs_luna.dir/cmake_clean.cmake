file(REMOVE_RECURSE
  "CMakeFiles/fig08_io_hangs_luna.dir/fig08_io_hangs_luna.cpp.o"
  "CMakeFiles/fig08_io_hangs_luna.dir/fig08_io_hangs_luna.cpp.o.d"
  "fig08_io_hangs_luna"
  "fig08_io_hangs_luna.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_io_hangs_luna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
