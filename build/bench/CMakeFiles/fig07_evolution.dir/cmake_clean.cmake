file(REMOVE_RECURSE
  "CMakeFiles/fig07_evolution.dir/fig07_evolution.cpp.o"
  "CMakeFiles/fig07_evolution.dir/fig07_evolution.cpp.o.d"
  "fig07_evolution"
  "fig07_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
