# Empty compiler generated dependencies file for fig07_evolution.
# This may be replaced when dependencies are built.
