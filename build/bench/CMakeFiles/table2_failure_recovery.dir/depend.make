# Empty dependencies file for table2_failure_recovery.
# This may be replaced when dependencies are built.
