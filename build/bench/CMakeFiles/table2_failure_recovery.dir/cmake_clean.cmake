file(REMOVE_RECURSE
  "CMakeFiles/table2_failure_recovery.dir/table2_failure_recovery.cpp.o"
  "CMakeFiles/table2_failure_recovery.dir/table2_failure_recovery.cpp.o.d"
  "table2_failure_recovery"
  "table2_failure_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_failure_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
