file(REMOVE_RECURSE
  "CMakeFiles/ablation_rdma_scaling.dir/ablation_rdma_scaling.cpp.o"
  "CMakeFiles/ablation_rdma_scaling.dir/ablation_rdma_scaling.cpp.o.d"
  "ablation_rdma_scaling"
  "ablation_rdma_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rdma_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
