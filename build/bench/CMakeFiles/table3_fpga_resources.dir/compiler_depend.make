# Empty compiler generated dependencies file for table3_fpga_resources.
# This may be replaced when dependencies are built.
