file(REMOVE_RECURSE
  "CMakeFiles/table3_fpga_resources.dir/table3_fpga_resources.cpp.o"
  "CMakeFiles/table3_fpga_resources.dir/table3_fpga_resources.cpp.o.d"
  "table3_fpga_resources"
  "table3_fpga_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fpga_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
