# Empty dependencies file for fig14_fio_scaling.
# This may be replaced when dependencies are built.
