
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig14_fio_scaling.cpp" "bench/CMakeFiles/fig14_fio_scaling.dir/fig14_fio_scaling.cpp.o" "gcc" "bench/CMakeFiles/fig14_fio_scaling.dir/fig14_fio_scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ebs/CMakeFiles/repro_ebs.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/repro_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/solar/CMakeFiles/repro_solar.dir/DependInfo.cmake"
  "/root/repo/build/src/rdma/CMakeFiles/repro_rdma.dir/DependInfo.cmake"
  "/root/repo/build/src/p4/CMakeFiles/repro_p4.dir/DependInfo.cmake"
  "/root/repo/build/src/dpu/CMakeFiles/repro_dpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sa/CMakeFiles/repro_sa.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/repro_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/repro_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/repro_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
