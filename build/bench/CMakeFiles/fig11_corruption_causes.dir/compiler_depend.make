# Empty compiler generated dependencies file for fig11_corruption_causes.
# This may be replaced when dependencies are built.
