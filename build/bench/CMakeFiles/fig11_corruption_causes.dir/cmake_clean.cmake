file(REMOVE_RECURSE
  "CMakeFiles/fig11_corruption_causes.dir/fig11_corruption_causes.cpp.o"
  "CMakeFiles/fig11_corruption_causes.dir/fig11_corruption_causes.cpp.o.d"
  "fig11_corruption_causes"
  "fig11_corruption_causes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_corruption_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
