# Empty dependencies file for fig05_size_distribution.
# This may be replaced when dependencies are built.
