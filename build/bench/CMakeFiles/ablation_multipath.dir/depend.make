# Empty dependencies file for ablation_multipath.
# This may be replaced when dependencies are built.
