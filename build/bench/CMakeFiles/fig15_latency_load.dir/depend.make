# Empty dependencies file for fig15_latency_load.
# This may be replaced when dependencies are built.
