file(REMOVE_RECURSE
  "CMakeFiles/fig15_latency_load.dir/fig15_latency_load.cpp.o"
  "CMakeFiles/fig15_latency_load.dir/fig15_latency_load.cpp.o.d"
  "fig15_latency_load"
  "fig15_latency_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_latency_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
