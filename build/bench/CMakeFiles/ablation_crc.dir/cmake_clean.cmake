file(REMOVE_RECURSE
  "CMakeFiles/ablation_crc.dir/ablation_crc.cpp.o"
  "CMakeFiles/ablation_crc.dir/ablation_crc.cpp.o.d"
  "ablation_crc"
  "ablation_crc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
