file(REMOVE_RECURSE
  "CMakeFiles/fig03_traffic_patterns.dir/fig03_traffic_patterns.cpp.o"
  "CMakeFiles/fig03_traffic_patterns.dir/fig03_traffic_patterns.cpp.o.d"
  "fig03_traffic_patterns"
  "fig03_traffic_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_traffic_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
