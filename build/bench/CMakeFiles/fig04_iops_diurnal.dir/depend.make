# Empty dependencies file for fig04_iops_diurnal.
# This may be replaced when dependencies are built.
