file(REMOVE_RECURSE
  "CMakeFiles/fig04_iops_diurnal.dir/fig04_iops_diurnal.cpp.o"
  "CMakeFiles/fig04_iops_diurnal.dir/fig04_iops_diurnal.cpp.o.d"
  "fig04_iops_diurnal"
  "fig04_iops_diurnal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_iops_diurnal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
