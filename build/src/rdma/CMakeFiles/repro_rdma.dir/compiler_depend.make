# Empty compiler generated dependencies file for repro_rdma.
# This may be replaced when dependencies are built.
