
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdma/rdma.cpp" "src/rdma/CMakeFiles/repro_rdma.dir/rdma.cpp.o" "gcc" "src/rdma/CMakeFiles/repro_rdma.dir/rdma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/repro_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
