file(REMOVE_RECURSE
  "CMakeFiles/repro_rdma.dir/rdma.cpp.o"
  "CMakeFiles/repro_rdma.dir/rdma.cpp.o.d"
  "librepro_rdma.a"
  "librepro_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
