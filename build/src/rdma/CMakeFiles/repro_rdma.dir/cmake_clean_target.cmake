file(REMOVE_RECURSE
  "librepro_rdma.a"
)
