file(REMOVE_RECURSE
  "CMakeFiles/repro_sa.dir/agent.cpp.o"
  "CMakeFiles/repro_sa.dir/agent.cpp.o.d"
  "CMakeFiles/repro_sa.dir/crypto.cpp.o"
  "CMakeFiles/repro_sa.dir/crypto.cpp.o.d"
  "CMakeFiles/repro_sa.dir/qos_table.cpp.o"
  "CMakeFiles/repro_sa.dir/qos_table.cpp.o.d"
  "CMakeFiles/repro_sa.dir/segment_table.cpp.o"
  "CMakeFiles/repro_sa.dir/segment_table.cpp.o.d"
  "librepro_sa.a"
  "librepro_sa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_sa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
