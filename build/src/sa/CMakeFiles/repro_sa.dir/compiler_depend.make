# Empty compiler generated dependencies file for repro_sa.
# This may be replaced when dependencies are built.
