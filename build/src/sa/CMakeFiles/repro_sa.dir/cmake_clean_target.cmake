file(REMOVE_RECURSE
  "librepro_sa.a"
)
