file(REMOVE_RECURSE
  "CMakeFiles/repro_dpu.dir/fpga.cpp.o"
  "CMakeFiles/repro_dpu.dir/fpga.cpp.o.d"
  "CMakeFiles/repro_dpu.dir/resources.cpp.o"
  "CMakeFiles/repro_dpu.dir/resources.cpp.o.d"
  "librepro_dpu.a"
  "librepro_dpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_dpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
