file(REMOVE_RECURSE
  "librepro_dpu.a"
)
