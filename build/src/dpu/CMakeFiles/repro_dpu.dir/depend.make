# Empty dependencies file for repro_dpu.
# This may be replaced when dependencies are built.
