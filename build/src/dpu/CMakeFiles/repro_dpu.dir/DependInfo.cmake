
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpu/fpga.cpp" "src/dpu/CMakeFiles/repro_dpu.dir/fpga.cpp.o" "gcc" "src/dpu/CMakeFiles/repro_dpu.dir/fpga.cpp.o.d"
  "/root/repo/src/dpu/resources.cpp" "src/dpu/CMakeFiles/repro_dpu.dir/resources.cpp.o" "gcc" "src/dpu/CMakeFiles/repro_dpu.dir/resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sa/CMakeFiles/repro_sa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/repro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/repro_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/repro_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/repro_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
