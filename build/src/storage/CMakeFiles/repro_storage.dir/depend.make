# Empty dependencies file for repro_storage.
# This may be replaced when dependencies are built.
