file(REMOVE_RECURSE
  "CMakeFiles/repro_storage.dir/block_server.cpp.o"
  "CMakeFiles/repro_storage.dir/block_server.cpp.o.d"
  "CMakeFiles/repro_storage.dir/segment_store.cpp.o"
  "CMakeFiles/repro_storage.dir/segment_store.cpp.o.d"
  "CMakeFiles/repro_storage.dir/ssd.cpp.o"
  "CMakeFiles/repro_storage.dir/ssd.cpp.o.d"
  "librepro_storage.a"
  "librepro_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
