file(REMOVE_RECURSE
  "librepro_storage.a"
)
