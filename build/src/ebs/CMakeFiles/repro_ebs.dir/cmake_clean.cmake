file(REMOVE_RECURSE
  "CMakeFiles/repro_ebs.dir/cluster.cpp.o"
  "CMakeFiles/repro_ebs.dir/cluster.cpp.o.d"
  "CMakeFiles/repro_ebs.dir/metrics.cpp.o"
  "CMakeFiles/repro_ebs.dir/metrics.cpp.o.d"
  "librepro_ebs.a"
  "librepro_ebs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_ebs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
