file(REMOVE_RECURSE
  "librepro_ebs.a"
)
