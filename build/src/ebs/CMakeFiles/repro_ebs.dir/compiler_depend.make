# Empty compiler generated dependencies file for repro_ebs.
# This may be replaced when dependencies are built.
