file(REMOVE_RECURSE
  "CMakeFiles/repro_solar.dir/client.cpp.o"
  "CMakeFiles/repro_solar.dir/client.cpp.o.d"
  "CMakeFiles/repro_solar.dir/path.cpp.o"
  "CMakeFiles/repro_solar.dir/path.cpp.o.d"
  "CMakeFiles/repro_solar.dir/server.cpp.o"
  "CMakeFiles/repro_solar.dir/server.cpp.o.d"
  "librepro_solar.a"
  "librepro_solar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_solar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
