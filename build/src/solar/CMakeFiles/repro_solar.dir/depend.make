# Empty dependencies file for repro_solar.
# This may be replaced when dependencies are built.
