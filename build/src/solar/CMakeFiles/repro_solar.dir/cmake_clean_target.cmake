file(REMOVE_RECURSE
  "librepro_solar.a"
)
