file(REMOVE_RECURSE
  "CMakeFiles/repro_proto.dir/headers.cpp.o"
  "CMakeFiles/repro_proto.dir/headers.cpp.o.d"
  "librepro_proto.a"
  "librepro_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
