# Empty dependencies file for repro_proto.
# This may be replaced when dependencies are built.
