file(REMOVE_RECURSE
  "librepro_proto.a"
)
