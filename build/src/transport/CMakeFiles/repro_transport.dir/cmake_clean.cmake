file(REMOVE_RECURSE
  "CMakeFiles/repro_transport.dir/message.cpp.o"
  "CMakeFiles/repro_transport.dir/message.cpp.o.d"
  "CMakeFiles/repro_transport.dir/tcp.cpp.o"
  "CMakeFiles/repro_transport.dir/tcp.cpp.o.d"
  "librepro_transport.a"
  "librepro_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
