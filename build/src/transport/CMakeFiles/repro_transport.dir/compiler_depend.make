# Empty compiler generated dependencies file for repro_transport.
# This may be replaced when dependencies are built.
