file(REMOVE_RECURSE
  "librepro_transport.a"
)
