file(REMOVE_RECURSE
  "CMakeFiles/repro_net.dir/network.cpp.o"
  "CMakeFiles/repro_net.dir/network.cpp.o.d"
  "CMakeFiles/repro_net.dir/nic.cpp.o"
  "CMakeFiles/repro_net.dir/nic.cpp.o.d"
  "CMakeFiles/repro_net.dir/switch.cpp.o"
  "CMakeFiles/repro_net.dir/switch.cpp.o.d"
  "CMakeFiles/repro_net.dir/topology.cpp.o"
  "CMakeFiles/repro_net.dir/topology.cpp.o.d"
  "librepro_net.a"
  "librepro_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
