file(REMOVE_RECURSE
  "librepro_p4.a"
)
