file(REMOVE_RECURSE
  "CMakeFiles/repro_p4.dir/pipeline.cpp.o"
  "CMakeFiles/repro_p4.dir/pipeline.cpp.o.d"
  "CMakeFiles/repro_p4.dir/solar_program.cpp.o"
  "CMakeFiles/repro_p4.dir/solar_program.cpp.o.d"
  "librepro_p4.a"
  "librepro_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
