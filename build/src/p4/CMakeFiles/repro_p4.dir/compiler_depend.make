# Empty compiler generated dependencies file for repro_p4.
# This may be replaced when dependencies are built.
