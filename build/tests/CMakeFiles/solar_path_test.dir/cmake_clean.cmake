file(REMOVE_RECURSE
  "CMakeFiles/solar_path_test.dir/solar_path_test.cpp.o"
  "CMakeFiles/solar_path_test.dir/solar_path_test.cpp.o.d"
  "solar_path_test"
  "solar_path_test.pdb"
  "solar_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solar_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
