# Empty compiler generated dependencies file for proto_wire_test.
# This may be replaced when dependencies are built.
