# Empty compiler generated dependencies file for solar_server_test.
# This may be replaced when dependencies are built.
