file(REMOVE_RECURSE
  "CMakeFiles/solar_server_test.dir/solar_server_test.cpp.o"
  "CMakeFiles/solar_server_test.dir/solar_server_test.cpp.o.d"
  "solar_server_test"
  "solar_server_test.pdb"
  "solar_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solar_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
