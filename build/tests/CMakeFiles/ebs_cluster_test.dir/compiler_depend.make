# Empty compiler generated dependencies file for ebs_cluster_test.
# This may be replaced when dependencies are built.
