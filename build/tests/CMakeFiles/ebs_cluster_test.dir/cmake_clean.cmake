file(REMOVE_RECURSE
  "CMakeFiles/ebs_cluster_test.dir/ebs_cluster_test.cpp.o"
  "CMakeFiles/ebs_cluster_test.dir/ebs_cluster_test.cpp.o.d"
  "ebs_cluster_test"
  "ebs_cluster_test.pdb"
  "ebs_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ebs_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
