# Empty dependencies file for solar_test.
# This may be replaced when dependencies are built.
