file(REMOVE_RECURSE
  "CMakeFiles/dpu_test.dir/dpu_test.cpp.o"
  "CMakeFiles/dpu_test.dir/dpu_test.cpp.o.d"
  "dpu_test"
  "dpu_test.pdb"
  "dpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
