# Empty compiler generated dependencies file for sa_test.
# This may be replaced when dependencies are built.
