file(REMOVE_RECURSE
  "CMakeFiles/sa_test.dir/sa_test.cpp.o"
  "CMakeFiles/sa_test.dir/sa_test.cpp.o.d"
  "sa_test"
  "sa_test.pdb"
  "sa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
