# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_crc32_test[1]_include.cmake")
include("/root/repo/build/tests/common_util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/net_fabric_test[1]_include.cmake")
include("/root/repo/build/tests/proto_wire_test[1]_include.cmake")
include("/root/repo/build/tests/transport_tcp_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sa_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_test[1]_include.cmake")
include("/root/repo/build/tests/dpu_test[1]_include.cmake")
include("/root/repo/build/tests/solar_test[1]_include.cmake")
include("/root/repo/build/tests/ebs_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/p4_test[1]_include.cmake")
include("/root/repo/build/tests/solar_path_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/solar_server_test[1]_include.cmake")
