// Shared plumbing for the experiment harnesses: cluster construction per
// stack generation, warmup/measure fio runs, and uniform table printing.
//
// Each bench binary regenerates one of the paper's tables/figures; see
// DESIGN.md §3 for the experiment index and EXPERIMENTS.md for paper-vs-
// measured notes.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "ebs/cluster.h"
#include "ebs/metrics.h"
#include "ebs/scenario.h"
#include "workload/fio.h"

namespace repro::bench {

struct ClusterUnderTest {
  std::unique_ptr<sim::Engine> engine;
  std::unique_ptr<ebs::Cluster> cluster;
  std::vector<std::uint64_t> vds;  ///< one per compute node
};

/// The benches' canonical scenario: small fabric, one VD per compute node,
/// placeholder payloads (byte-level work is covered by the unit/property
/// tests and the fig11 campaign).
inline ebs::ScenarioSpec default_scenario(ebs::StackKind stack,
                                          int compute = 2, int storage = 8,
                                          std::uint64_t seed = 42) {
  ebs::ScenarioSpec spec;
  spec.name = "bench";
  spec.compute_nodes = compute;
  spec.storage_nodes = storage;
  spec.stack = stack;
  spec.seed = seed;
  return spec;
}

inline ebs::ClusterParams default_params(ebs::StackKind stack,
                                         int compute = 2, int storage = 8,
                                         std::uint64_t seed = 42) {
  return ebs::params_from(default_scenario(stack, compute, storage, seed));
}

inline ClusterUnderTest make_cluster(ebs::ClusterParams params,
                                     std::uint64_t vd_size = 8ull << 30) {
  ClusterUnderTest c;
  c.engine = std::make_unique<sim::Engine>();
  c.cluster = std::make_unique<ebs::Cluster>(*c.engine, params);
  for (int i = 0; i < c.cluster->num_compute(); ++i) {
    c.vds.push_back(c.cluster->create_vd(vd_size));
  }
  return c;
}

/// Builds a cluster straight from a declarative scenario.
inline ClusterUnderTest make_cluster(const ebs::ScenarioSpec& spec,
                                     obs::Obs* obs = nullptr) {
  ebs::Scenario s = ebs::build_scenario(spec, obs);
  return ClusterUnderTest{std::move(s.engine), std::move(s.cluster),
                          std::move(s.vds)};
}

inline workload::SubmitFn submit_via(ebs::Cluster& cluster, int node) {
  return [&cluster, node](transport::IoRequest io,
                          transport::IoCompleteFn done) {
    cluster.compute(node).submit_io(std::move(io), std::move(done));
  };
}

/// Runs a closed-loop fio job on compute node 0: `warmup` to fill caches
/// and windows, then measures for `measure`. Returns the job's metrics
/// (cleared after warmup) and reports consumed cores over the window.
struct FioRunResult {
  ebs::MetricSink metrics;
  double consumed_cores = 0.0;
  TimeNs measured_ns = 0;
};

inline FioRunResult run_fio(ClusterUnderTest& c, workload::FioConfig cfg,
                            TimeNs warmup, TimeNs measure, int node = 0,
                            std::uint64_t seed = 7) {
  auto& eng = *c.engine;
  cfg.vd_id = c.vds[static_cast<std::size_t>(node)];
  workload::FioJob job(eng, submit_via(*c.cluster, node), cfg, Rng(seed));
  eng.at(eng.now(), [&] { job.start(); });
  eng.run_until(eng.now() + warmup);
  job.metrics().clear();
  c.cluster->reset_warmup();
  const TimeNs t0 = eng.now();
  eng.run_until(t0 + measure);
  job.stop();
  FioRunResult res;
  res.metrics = job.metrics();
  res.measured_ns = eng.now() - t0;
  res.consumed_cores = c.cluster->compute(node).consumed_cores(res.measured_ns);
  // Drain stragglers so destructors run on a quiet engine.
  eng.run_until(eng.now() + ms(50));
  return res;
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper reference: %s\n", paper.c_str());
  std::printf("================================================================\n");
}

}  // namespace repro::bench
