// Ablation: how many paths does SOLAR need? (design choice in §4.5: 4
// persistent paths per block-server peer).
//
// Sweep paths_per_peer in {1,2,4,8} and measure (a) healthy-cluster 4KB
// write latency, (b) recovery behaviour under a silent 50% blackhole at a
// core switch: hangs and worst-case I/O completion time.
#include <cstdio>

#include "bench_util.h"

using namespace repro;
using ebs::StackKind;

namespace {

struct Row {
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t hangs = 0;
  double worst_ms = 0;
  std::uint64_t redraws = 0;
};

Row run(int paths) {
  auto params = bench::default_params(StackKind::kSolar, 1, 4, 31 + paths);
  params.solar.path.paths_per_peer = paths;
  auto c = bench::make_cluster(params);
  auto& eng = *c.engine;
  Row row;

  // Healthy-phase latency.
  workload::FioConfig cfg;
  cfg.vd_id = c.vds[0];
  cfg.block_size = 4096;
  cfg.iodepth = 4;
  cfg.read_fraction = 0.2;
  workload::FioJob job(eng, bench::submit_via(*c.cluster, 0), cfg, Rng(3));
  eng.at(0, [&] { job.start(); });
  eng.run_until(ms(30));
  job.metrics().clear();
  eng.run_until(ms(80));
  row.p50_us = to_us(job.metrics().total().percentile(0.5));
  row.p99_us = to_us(job.metrics().total().percentile(0.99));

  // Failure phase: silent partial blackhole on a core switch.
  job.metrics().clear();
  SampleSet completion_ms;
  c.cluster->network().set_blackhole(*c.cluster->clos().cores[0], 0.5);
  eng.run_until(eng.now() + seconds(3));
  job.stop();
  c.cluster->network().set_blackhole(*c.cluster->clos().cores[0], 0.0);
  eng.run_until(eng.now() + seconds(30));
  row.hangs = job.metrics().hangs();
  row.worst_ms = to_ms(job.metrics().total().max());
  row.redraws = c.cluster->compute(0).solar()->stats().path_redraws;
  return row;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: SOLAR path count (1/2/4/8 paths per peer)",
      "design choice of §4.5; Table 2's zeros rely on path diversity");
  TextTable t({"paths", "p50 (us)", "p99 (us)", "hangs under blackhole",
               "worst I/O (ms)", "path redraws"});
  for (int paths : {1, 2, 4, 8}) {
    const Row r = run(paths);
    t.add_row({TextTable::num(static_cast<std::int64_t>(paths)),
               TextTable::num(r.p50_us), TextTable::num(r.p99_us),
               TextTable::num(static_cast<std::int64_t>(r.hangs)),
               TextTable::num(r.worst_ms),
               TextTable::num(static_cast<std::int64_t>(r.redraws))});
  }
  std::printf("%s", t.render().c_str());
  std::printf("expected shape: healthy latency is flat in path count; "
              "recovery tails shrink sharply from 1 -> 4 paths and saturate "
              "after — the paper's choice of 4 is the knee\n");
  return 0;
}
