// Table 3: SOLAR's FPGA resource consumption per module (LUT% / BRAM%).
// See src/dpu/resources.h for the cost model and DESIGN.md for the
// substitution note (no RTL synthesis here; coefficients calibrated to the
// paper's utilization at the default table geometry).
#include <cstdio>

#include "bench_util.h"
#include "dpu/resources.h"

using namespace repro;

int main() {
  bench::print_header("Table 3: SOLAR hardware resource consumption",
                      "Table 3 (Addr 5.1/8.1 ... Total 8.5/18.2)");

  const dpu::SolarHwConfig cfg;
  TextTable t({"Module", "LUTs", "LUT %", "BRAM Kb", "BRAM %"});
  for (const auto& m : dpu::solar_resource_usage(cfg)) {
    t.add_row({m.name, TextTable::num(static_cast<std::int64_t>(m.luts)),
               TextTable::num(m.lut_pct),
               TextTable::num(static_cast<double>(m.bram_bits) / 1024.0, 0),
               TextTable::num(m.bram_pct)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("table geometry: addr=%u entries x %ub, block=%u x %ub, "
              "qos=%u x %ub, datapath=%ub\n",
              cfg.addr_entries, cfg.addr_entry_bits, cfg.block_entries,
              cfg.block_entry_bits, cfg.qos_entries, cfg.qos_entry_bits,
              cfg.datapath_bits);

  // Ablation: the paper's headline — SOLAR fits in a sliver of the FPGA
  // even if the Addr table is provisioned 4x.
  dpu::SolarHwConfig big = cfg;
  big.addr_entries *= 4;
  const auto usage = dpu::solar_resource_usage(big);
  std::printf("with 4x Addr table: total %.1f%% LUT / %.1f%% BRAM "
              "(still a fraction of the device)\n",
              usage.back().lut_pct, usage.back().bram_pct);
  return 0;
}
