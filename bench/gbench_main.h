// Shared main() body for the google-benchmark binaries: console output for
// humans plus a BENCH_<name>.json mirror for the driver's benchmark gate,
// unless the caller already passed an explicit --benchmark_out.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

namespace repro::bench {

inline int run_gbench_main(int argc, char** argv, const char* default_out) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out")) {
      has_out = true;
    }
  }
  std::string out_flag = std::string("--benchmark_out=") + default_out;
  static constexpr char kFmtFlag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(const_cast<char*>(kFmtFlag));
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace repro::bench
