// Ablation: RDMA's connection-scalability cliff (§3.1: "the overall
// throughput of the RNIC went down quickly after the number of
// connections was beyond 5,000") — the reason FN could not be RDMA.
//
// Scaled-down reproduction: the RNIC QP-context cache is set to 64
// entries (paper-era NICs cached ~thousands); we sweep the number of
// active QPs across it and measure aggregate RPC throughput. The shape to
// reproduce: flat until the cache bound, collapsing beyond it.
#include <cstdio>

#include "bench_util.h"
#include "rdma/rdma.h"

using namespace repro;

namespace {

double run(int peers, std::size_t cache_size) {
  sim::Engine eng;
  net::Network net(eng, net::NetworkParams{}, 21);
  net::ClosConfig cfg;
  cfg.compute_servers = 1;
  cfg.storage_servers = peers;
  cfg.servers_per_rack = std::max(peers, 1);
  auto clos = net::build_clos(net, cfg);

  rdma::RdmaParams params;
  params.qp_cache_size = cache_size;
  params.qp_cache_miss_penalty = us(3);
  sim::CpuPool ccpu(eng, "c", 8, sim::CpuPool::Dispatch::kByHash);
  rdma::RdmaStack client(eng, *clos.compute[0], ccpu, params, Rng(1));
  std::vector<std::unique_ptr<sim::CpuPool>> scpus;
  std::vector<std::unique_ptr<rdma::RdmaStack>> servers;
  for (auto* nic : clos.storage) {
    scpus.push_back(std::make_unique<sim::CpuPool>(
        eng, "s", 4, sim::CpuPool::Dispatch::kByHash));
    servers.push_back(std::make_unique<rdma::RdmaStack>(
        eng, *nic, *scpus.back(), params, Rng(2)));
    servers.back()->set_handler(
        [](transport::StorageRequest,
           std::function<void(transport::StorageResponse)> reply) {
          reply(transport::StorageResponse{});
        });
  }

  // Closed loop: 4 outstanding 16KB RPCs round-robining over all peers —
  // every touch lands on a different QP, so beyond the cache every packet
  // pays a context fetch.
  std::uint64_t bytes = 0;
  bool measuring = false;
  int peer_rr = 0;
  std::function<void()> issue = [&] {
    transport::StorageRequest req;
    req.op = transport::OpType::kWrite;
    req.len = 16384;
    req.blocks = transport::make_placeholder_blocks(0, 16384, 4096);
    const auto dst = clos.storage[static_cast<std::size_t>(peer_rr++ % peers)]->ip();
    client.call(dst, std::move(req), [&](transport::StorageResponse) {
      if (measuring) bytes += 16384;
      issue();
    });
  };
  eng.at(0, [&] {
    for (int i = 0; i < 16; ++i) issue();
  });
  eng.run_until(ms(20));
  measuring = true;
  const TimeNs m0 = eng.now();
  eng.run_until(m0 + ms(40));
  return throughput_bps(bytes, eng.now() - m0) / 1e9;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: RDMA throughput vs active QP count (QP cache = 64)",
      "§3.1 (RNIC throughput collapse beyond ~5000 connections, scaled)");
  TextTable t({"active QPs", "aggregate Gbps", "vs cache bound"});
  double at_cache = 0;
  for (int peers : {8, 32, 64, 96, 128}) {
    const double gbps_achieved = run(peers, 64);
    if (peers == 64) at_cache = gbps_achieved;
    t.add_row({TextTable::num(static_cast<std::int64_t>(peers)),
               TextTable::num(gbps_achieved),
               peers <= 64 ? "within" : "beyond"});
  }
  std::printf("%s", t.render().c_str());
  std::printf("shape: throughput holds up to the QP-cache size and drops "
              "beyond it (paper: cliff past ~5000 QPs). at-cache: %.1f "
              "Gbps\n",
              at_cache);
  return 0;
}
