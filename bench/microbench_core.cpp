// Core microbenchmarks (google-benchmark): the building blocks whose speed
// bounds how much simulated traffic the experiment harnesses can push —
// event engine, flow hashing, histogram recording, P4 pipeline processing,
// and the block cipher.
#include <benchmark/benchmark.h>

#include "common/crc32.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "net/packet.h"
#include "p4/solar_program.h"
#include "proto/headers.h"
#include "sa/crypto.h"
#include "sim/engine.h"

namespace repro {
namespace {

void BM_EngineScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      eng.after(i, [&sink] { ++sink; });
    }
    eng.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleRun);

void BM_FlowHash(benchmark::State& state) {
  net::FlowKey flow{1, 2, 3, 4, net::Proto::kUdp};
  std::uint64_t salt = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::flow_hash(flow, salt++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowHash);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (auto _ : state) {
    h.record(static_cast<std::int64_t>(rng.next_below(1'000'000)));
  }
  benchmark::DoNotOptimize(h.percentile(0.99));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_P4ReadRxPipeline(benchmark::State& state) {
  auto pipe = p4::make_read_rx_pipeline(p4::SolarProgramConfig{});
  pipe.table("addr")->add_entry({1, 0}, "dma", {0x1000});
  Rng rng(2);
  std::vector<std::uint8_t> payload(proto::kBlockSize);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  proto::RpcHeader rpc;
  rpc.rpc_id = 1;
  rpc.msg_type = proto::RpcMsgType::kReadResponse;
  proto::EbsHeader ebs;
  ebs.block_len = proto::kBlockSize;
  ebs.payload_crc = crc32_raw(payload);
  ebs.op = proto::EbsOp::kRead;
  const auto bytes = encode_solar_packet(rpc, ebs, payload);
  for (auto _ : state) {
    p4::PacketCtx ctx;
    ctx.bytes = bytes;
    benchmark::DoNotOptimize(pipe.process(ctx));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_P4ReadRxPipeline);

void BM_BlockCipher4K(benchmark::State& state) {
  sa::BlockCipher cipher(0xFEED);
  std::vector<std::uint8_t> data(4096, 0xAB);
  for (auto _ : state) {
    cipher.apply(1, 4096, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_BlockCipher4K);

void BM_SolarPacketParse(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::uint8_t> payload(proto::kBlockSize);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  proto::RpcHeader rpc;
  rpc.msg_type = proto::RpcMsgType::kWriteRequest;
  proto::EbsHeader ebs;
  ebs.block_len = proto::kBlockSize;
  const auto bytes = encode_solar_packet(rpc, ebs, payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::parse_solar_packet(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolarPacketParse);

}  // namespace
}  // namespace repro

BENCHMARK_MAIN();
