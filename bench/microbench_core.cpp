// Core microbenchmarks (google-benchmark): the building blocks whose speed
// bounds how much simulated traffic the experiment harnesses can push —
// event engine, packet pool, fabric hot path, flow hashing, histogram
// recording, P4 pipeline processing, and the block cipher.
//
// Two things distinguish this from a stock benchmark file:
//  * A global allocation counter (operator new/delete overrides below)
//    lets every benchmark report `allocs_per_event` / `allocs_per_op`.
//    The engine and packet hot paths must report 0 in steady state.
//  * `baseline::Engine` is a self-contained copy of the pre-timer-wheel
//    scheduler (std::priority_queue + std::function + tombstone cancels),
//    kept here so BM_Baseline* vs BM_Engine* is an apples-to-apples
//    comparison inside one binary. The perf gate: the wheel must sustain
//    at least 2x the baseline's events/sec on the churn workload.
//
// Results are printed to the console and mirrored to BENCH_core.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/crc32.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "gbench_main.h"
#include "net/nic.h"
#include "net/packet.h"
#include "net/topology.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "p4/solar_program.h"
#include "proto/headers.h"
#include "sa/crypto.h"
#include "sim/engine.h"

// ---------------------------------------------------------------------------
// Allocation counter: every heap allocation in the process bumps this.
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace repro {

// ---------------------------------------------------------------------------
// The pre-overhaul scheduler, verbatim in behavior: binary heap ordered by
// (time, seq), std::function callbacks, cancellation via a tombstone set
// consulted at pop time.
// ---------------------------------------------------------------------------

namespace baseline {

using TimerId = std::uint64_t;

class Engine {
 public:
  TimeNs now() const { return now_; }

  TimerId schedule_after(TimeNs delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  TimerId schedule_at(TimeNs t, std::function<void()> fn) {
    if (t < now_) t = now_;
    const TimerId id = next_id_++;
    queue_.push(Event{t, next_seq_++, id, std::move(fn)});
    return id;
  }

  bool cancel(TimerId id) {
    if (id == 0 || id >= next_id_) return false;
    return canceled_.insert(id).second;
  }

  bool step() {
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      if (auto it = canceled_.find(ev.id); it != canceled_.end()) {
        canceled_.erase(it);
        continue;
      }
      now_ = ev.time;
      ev.fn();
      return true;
    }
    return false;
  }

  void run() {
    while (step()) {
    }
  }

 private:
  struct Event {
    TimeNs time;
    std::uint64_t seq;
    TimerId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<TimerId> canceled_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerId next_id_ = 1;
};

}  // namespace baseline

namespace {

// ---------------------------------------------------------------------------
// Scheduler churn: the simulator's real event mix. Each round schedules a
// batch of timers at scattered delays with a 24-byte capture (the typical
// size of a transmit/retransmit closure), cancels a third of them (every
// data packet arms a retransmission timer that an ACK then cancels), and
// drains. Works identically on both engines.
// ---------------------------------------------------------------------------

constexpr int kChurnBatch = 1024;

template <typename EngineT>
void churn_round(EngineT& eng, std::vector<std::uint64_t>& ids,
                 std::uint64_t& sink, std::uint64_t& lcg) {
  ids.clear();
  for (int i = 0; i < kChurnBatch; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const TimeNs d = static_cast<TimeNs>((lcg >> 33) % 100000);
    std::uint64_t* s = &sink;
    const std::uint64_t x = lcg;
    ids.push_back(
        eng.schedule_after(d, [s, x, d] { *s += x ^ static_cast<std::uint64_t>(d); }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) eng.cancel(ids[i]);
  eng.run();
}

template <typename EngineT>
void engine_timer_churn(benchmark::State& state) {
  EngineT eng;
  std::vector<std::uint64_t> ids;
  ids.reserve(kChurnBatch);
  std::uint64_t sink = 0;
  std::uint64_t lcg = 0x9E3779B97F4A7C15ull;
  // Warm the pools / heap vector so we measure steady state.
  for (int i = 0; i < 4; ++i) churn_round(eng, ids, sink, lcg);

  // Steady-state allocations are counted between the end of the first
  // timed round and the end of the last one, so the benchmark framework's
  // own loop-entry/exit allocations don't pollute the number.
  std::uint64_t rounds = 0;
  std::uint64_t allocs_start = 0;
  std::uint64_t allocs_end = 0;
  for (auto _ : state) {
    churn_round(eng, ids, sink, lcg);
    allocs_end = alloc_count();
    if (++rounds == 1) allocs_start = allocs_end;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds * kChurnBatch));
  const double steady = static_cast<double>((rounds - 1) * kChurnBatch);
  state.counters["allocs_per_event"] = benchmark::Counter(
      rounds > 1 ? static_cast<double>(allocs_end - allocs_start) / steady
                 : 0.0);
}

void BM_EngineTimerChurn(benchmark::State& state) {
  engine_timer_churn<sim::Engine>(state);
}
BENCHMARK(BM_EngineTimerChurn);

void BM_BaselineEngineTimerChurn(benchmark::State& state) {
  engine_timer_churn<baseline::Engine>(state);
}
BENCHMARK(BM_BaselineEngineTimerChurn);

// Pure schedule+drain (no cancels), same shape the seed repo measured.
template <typename EngineT>
void engine_schedule_run(benchmark::State& state) {
  for (auto _ : state) {
    EngineT eng;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      eng.schedule_after(i, [&sink] { ++sink; });
    }
    eng.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

void BM_EngineScheduleRun(benchmark::State& state) {
  engine_schedule_run<sim::Engine>(state);
}
BENCHMARK(BM_EngineScheduleRun);

void BM_BaselineEngineScheduleRun(benchmark::State& state) {
  engine_schedule_run<baseline::Engine>(state);
}
BENCHMARK(BM_BaselineEngineScheduleRun);

// ---------------------------------------------------------------------------
// Packet pool: acquire, attach a pooled payload, release. Steady state must
// not allocate.
// ---------------------------------------------------------------------------

struct BenchFrame {
  std::uint64_t words[8] = {};
};

void BM_PacketPoolAcquireRelease(benchmark::State& state) {
  auto* pool = new net::PacketPool;
  {
    net::PacketPtr warm = pool->acquire();
    net::emplace_app<BenchFrame>(*warm);
  }
  std::uint64_t ops = 0;
  std::uint64_t allocs_start = 0;
  std::uint64_t allocs_end = 0;
  for (auto _ : state) {
    net::PacketPtr p = pool->acquire();
    p->size_bytes = 4096;
    net::emplace_app<BenchFrame>(*p);
    benchmark::DoNotOptimize(p.get());
    allocs_end = alloc_count();
    if (++ops == 1) allocs_start = allocs_end;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.counters["allocs_per_op"] = benchmark::Counter(
      ops > 1 ? static_cast<double>(allocs_end - allocs_start) /
                    static_cast<double>(ops - 1)
              : 0.0);
  pool->retire();
}
BENCHMARK(BM_PacketPoolAcquireRelease);

// ---------------------------------------------------------------------------
// Fabric hot path: NIC -> switch -> NIC ping-pong through the full egress
// queue / serialization / propagation machinery. Reports simulator
// events/sec and the steady-state allocation rate (must be 0).
// ---------------------------------------------------------------------------

void BM_FabricPingPong(benchmark::State& state) {
  constexpr int kHops = 512;
  sim::Engine eng;
  net::Network net(eng, net::NetworkParams{}, 1);
  auto t = net::build_two_hosts(net, gbps(100), ns(500));
  int hops_left = 0;
  auto echo = [&](net::Nic* self, net::Packet& pkt) {
    if (--hops_left <= 0) return;
    net::PacketPtr r = self->make_packet();
    r->flow = net::FlowKey{pkt.flow.dst_ip, pkt.flow.src_ip,
                           pkt.flow.dst_port, pkt.flow.src_port,
                           pkt.flow.proto};
    r->size_bytes = 4096;
    net::emplace_app<BenchFrame>(*r);
    self->send_packet(std::move(r));
  };
  t.a->set_deliver([&](net::Packet& pkt) { echo(t.a, pkt); });
  t.b->set_deliver([&](net::Packet& pkt) { echo(t.b, pkt); });
  auto kick = [&] {
    hops_left = kHops;
    eng.at(eng.now(), [&] {
      net::PacketPtr p = t.a->make_packet();
      p->flow = net::FlowKey{t.a->ip(), t.b->ip(), 7, 9, net::Proto::kUdp};
      p->size_bytes = 4096;
      net::emplace_app<BenchFrame>(*p);
      t.a->send_packet(std::move(p));
    });
    eng.run();
  };
  kick();  // warm pools

  const std::uint64_t events_before = eng.executed();
  std::uint64_t pkts = 0;
  std::uint64_t allocs_start = 0;
  std::uint64_t allocs_end = 0;
  std::uint64_t events_start = 0;
  for (auto _ : state) {
    kick();
    pkts += kHops;
    allocs_end = alloc_count();
    if (pkts == kHops) {
      allocs_start = allocs_end;
      events_start = eng.executed();
    }
  }
  const double events =
      static_cast<double>(eng.executed() - events_before);
  const double steady_events =
      static_cast<double>(eng.executed() - events_start);
  state.SetItemsProcessed(static_cast<std::int64_t>(pkts));
  state.counters["events_per_sec"] =
      benchmark::Counter(events, benchmark::Counter::kIsRate);
  state.counters["allocs_per_event"] = benchmark::Counter(
      steady_events > 0
          ? static_cast<double>(allocs_end - allocs_start) / steady_events
          : 0.0);
}
BENCHMARK(BM_FabricPingPong);

// ---------------------------------------------------------------------------
// Unchanged building-block benchmarks.
// ---------------------------------------------------------------------------

void BM_FlowHash(benchmark::State& state) {
  net::FlowKey flow{1, 2, 3, 4, net::Proto::kUdp};
  std::uint64_t salt = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::flow_hash(flow, salt++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowHash);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (auto _ : state) {
    h.record(static_cast<std::int64_t>(rng.next_below(1'000'000)));
  }
  benchmark::DoNotOptimize(h.percentile(0.99));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_P4ReadRxPipeline(benchmark::State& state) {
  auto pipe = p4::make_read_rx_pipeline(p4::SolarProgramConfig{});
  pipe.table("addr")->add_entry({1, 0}, "dma", {0x1000});
  Rng rng(2);
  std::vector<std::uint8_t> payload(proto::kBlockSize);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  proto::RpcHeader rpc;
  rpc.rpc_id = 1;
  rpc.msg_type = proto::RpcMsgType::kReadResponse;
  proto::EbsHeader ebs;
  ebs.block_len = proto::kBlockSize;
  ebs.payload_crc = crc32_raw(payload);
  ebs.op = proto::EbsOp::kRead;
  const auto bytes = encode_solar_packet(rpc, ebs, payload);
  for (auto _ : state) {
    p4::PacketCtx ctx;
    ctx.bytes = bytes;
    benchmark::DoNotOptimize(pipe.process(ctx));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_P4ReadRxPipeline);

void BM_BlockCipher4K(benchmark::State& state) {
  sa::BlockCipher cipher(0xFEED);
  std::vector<std::uint8_t> data(4096, 0xAB);
  for (auto _ : state) {
    cipher.apply(1, 4096, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_BlockCipher4K);

// ---------------------------------------------------------------------------
// Observability overhead guard. The registry's contract is that counter
// bumps and span records are allocation-free in steady state and that a
// disabled registry costs the same single add; these benchmarks are the
// gate (allocs_per_op must report 0).
// ---------------------------------------------------------------------------

void obs_counter_inc(benchmark::State& state, bool enabled) {
  obs::Registry reg(enabled);
  obs::Counter c = reg.counter("bench.counter");
  std::uint64_t ops = 0;
  std::uint64_t allocs_start = 0;
  std::uint64_t allocs_end = 0;
  for (auto _ : state) {
    c.inc();
    allocs_end = alloc_count();
    if (++ops == 1) allocs_start = allocs_end;
  }
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.counters["allocs_per_op"] = benchmark::Counter(
      ops > 1 ? static_cast<double>(allocs_end - allocs_start) /
                    static_cast<double>(ops - 1)
              : 0.0);
}

void BM_ObsCounterInc(benchmark::State& state) {
  obs_counter_inc(state, /*enabled=*/true);
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsCounterIncDisabled(benchmark::State& state) {
  obs_counter_inc(state, /*enabled=*/false);
}
BENCHMARK(BM_ObsCounterIncDisabled);

void BM_ObsSpanRecord(benchmark::State& state) {
  obs::Tracer trc(/*enabled=*/true, /*capacity=*/1 << 12);
  TimeNs t = 0;
  std::uint64_t ops = 0;
  std::uint64_t allocs_start = 0;
  std::uint64_t allocs_end = 0;
  for (auto _ : state) {
    const std::uint64_t parent = trc.begin();
    trc.span("bench.span", parent, t, t + 100, 1, 0, "arg", ops);
    t += 100;
    allocs_end = alloc_count();
    if (++ops == 1) allocs_start = allocs_end;
  }
  benchmark::DoNotOptimize(trc.total_recorded());
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.counters["allocs_per_op"] = benchmark::Counter(
      ops > 1 ? static_cast<double>(allocs_end - allocs_start) /
                    static_cast<double>(ops - 1)
              : 0.0);
}
BENCHMARK(BM_ObsSpanRecord);

void BM_SolarPacketParse(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::uint8_t> payload(proto::kBlockSize);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  proto::RpcHeader rpc;
  rpc.msg_type = proto::RpcMsgType::kWriteRequest;
  proto::EbsHeader ebs;
  ebs.block_len = proto::kBlockSize;
  const auto bytes = encode_solar_packet(rpc, ebs, payload);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::parse_solar_packet(bytes));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SolarPacketParse);

}  // namespace
}  // namespace repro

// Console for humans, BENCH_core.json for the driver's benchmark gate.
// The JSON mirror is on by default; an explicit --benchmark_out wins.
int main(int argc, char** argv) {
  return repro::bench::run_gbench_main(argc, argv, "BENCH_core.json");
}
