// Ablation (google-benchmark): the CPU cost of SOLAR's integrity options
// (§4.5): per-block software CRC (what offloading avoids) vs the XOR-
// aggregate check (one CRC pass per RPC, what SOLAR's DPU CPU actually
// runs) vs crc32_combine bookkeeping.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/crc32.h"
#include "common/rng.h"
#include "gbench_main.h"

namespace repro {
namespace {

std::vector<std::vector<std::uint8_t>> make_blocks(int n, std::size_t len) {
  Rng rng(1);
  std::vector<std::vector<std::uint8_t>> blocks(static_cast<std::size_t>(n));
  for (auto& b : blocks) {
    b.resize(len);
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.next());
  }
  return blocks;
}

void BM_PerBlockSoftwareCrc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto blocks = make_blocks(n, 4096);
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (const auto& b : blocks) acc ^= crc32_raw(b);
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          4096);
}
BENCHMARK(BM_PerBlockSoftwareCrc)->Arg(4)->Arg(16)->Arg(64);

void BM_XorAggregateCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto blocks = make_blocks(n, 4096);
  std::vector<std::uint32_t> crcs;
  for (const auto& b : blocks) crcs.push_back(crc32_raw(b));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc_aggregate_check(blocks, crcs));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          4096);
}
BENCHMARK(BM_XorAggregateCheck)->Arg(4)->Arg(16)->Arg(64);

void BM_Crc32Combine(benchmark::State& state) {
  Rng rng(2);
  const std::uint32_t a = static_cast<std::uint32_t>(rng.next());
  const std::uint32_t b = static_cast<std::uint32_t>(rng.next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32_combine(a, b, 4096));
  }
}
BENCHMARK(BM_Crc32Combine);

void BM_Crc32SingleBlock(benchmark::State& state) {
  auto blocks = make_blocks(1, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32_raw(blocks[0]));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32SingleBlock)->Arg(512)->Arg(4096)->Arg(65536);

}  // namespace
}  // namespace repro

int main(int argc, char** argv) {
  return repro::bench::run_gbench_main(argc, argv, "BENCH_ablation_crc.json");
}
