// Figure 15: latency of a single 4KB WRITE probe under (a) light and
// (b) heavy background load, median and 99th percentile, for
// LUNA / RDMA / SOLAR* / SOLAR.
//
// Paper shape: SOLAR tracks RDMA closely on the light cluster and keeps a
// large margin over LUNA under load (hardware data path + dedicated
// switch queue + HPCC-style CC).
#include <cstdio>

#include "bench_util.h"

using namespace repro;
using ebs::StackKind;

namespace {

struct P5099 {
  double p50 = 0;
  double p99 = 0;
};

P5099 run_case(StackKind stack, bool heavy) {
  auto params = bench::default_params(stack, /*compute=*/3, /*storage=*/8);
  params.on_dpu = true;
  auto c = bench::make_cluster(params);
  auto& eng = *c.engine;

  std::vector<std::unique_ptr<workload::FioJob>> background;
  if (heavy) {
    // Saturating background: bulk writes from every compute node, partly
    // targeting the probe node's own stack and fabric paths.
    for (int node = 0; node < 3; ++node) {
      workload::FioConfig bg;
      bg.vd_id = c.vds[static_cast<std::size_t>(node)];
      bg.block_size = 65536;
      bg.iodepth = 24;
      bg.read_fraction = 0.2;
      background.push_back(std::make_unique<workload::FioJob>(
          eng, bench::submit_via(*c.cluster, node), bg,
          Rng(100 + static_cast<std::uint64_t>(node))));
      eng.at(eng.now(), [job = background.back().get()] { job->start(); });
    }
  }
  eng.run_until(eng.now() + ms(heavy ? 20 : 2));

  // Probe: one outstanding 4KB write at a time from node 0.
  SampleSet lat;
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    transport::IoRequest io;
    io.vd_id = c.vds[0];
    io.op = transport::OpType::kWrite;
    io.offset = rng.next_below(1 << 18) * 4096;
    io.len = 4096;
    io.payload = transport::make_placeholder_blocks(io.offset, 4096, 4096);
    bool done = false;
    const TimeNs t0 = eng.now();
    eng.at(eng.now(), [&] {
      c.cluster->compute(0).submit_io(std::move(io),
                                      [&](transport::IoResult) {
                                        done = true;
                                      });
    });
    while (!done && eng.step()) {
    }
    lat.record(to_us(eng.now() - t0));
    eng.run_until(eng.now() + us(heavy ? 100 : 30));
  }
  for (auto& job : background) job->stop();
  return P5099{lat.percentile(0.50), lat.percentile(0.99)};
}

void run_panel(const char* title, bool heavy) {
  std::printf("--- %s ---\n", title);
  TextTable t({"stack", "median (us)", "99th (us)"});
  std::map<StackKind, P5099> res;
  for (StackKind s : {StackKind::kLuna, StackKind::kRdma,
                      StackKind::kSolarStar, StackKind::kSolar}) {
    res[s] = run_case(s, heavy);
    t.add_row({ebs::to_string(s), TextTable::num(res[s].p50),
               TextTable::num(res[s].p99)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("shape: SOLAR/RDMA median ratio = %.2f (paper: close to 1); "
              "LUNA/SOLAR median ratio = %.1fx\n\n",
              res[StackKind::kSolar].p50 / res[StackKind::kRdma].p50,
              res[StackKind::kLuna].p50 / res[StackKind::kSolar].p50);
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 15: single 4KB write latency under background load",
      "Fig. 15a (light) / 15b (heavy); Luna/RDMA/Solar*/Solar");
  run_panel("(a) light load", false);
  run_panel("(b) heavy load", true);
  return 0;
}
