// EC rebuild bench: foreground p99 vs rebuild bandwidth.
//
// Seeds an erasure-coded VD with real payloads, fail-stops one fragment
// holder mid-run (device down + agent belief, so the outage is genuine),
// and lets the MaintenanceAgent's background rebuild race a foreground
// Poisson read stream — once per rebuild_bandwidth_cap arm on an
// otherwise-identical fleet. The node's DPU is throttled to one fat-cost
// core so the rebuild's sub-I/O storm visibly contends with guest traffic:
// the knob's whole tradeoff (repair MTTR vs guest p99) fits one curve.
//
// Asserts on the curve's endpoints:
//   * rebuilt bytes/sec strictly increases from the tightest cap to
//     uncapped (the cap is real), and
//   * foreground p99 does not decrease from the tightest cap to uncapped
//     (rebuild bandwidth is paid for by guest latency),
// plus bit-determinism (the tightest arm re-run must fingerprint equal).
// Writes BENCH_ec_rebuild.json. --smoke shrinks for CI; --scenario replays
// a ScenarioSpec JSON (e.g. the checked-in bench/data/ec_smoke.json) and
// exercises the strict scenario parser on a real file; --policy <name>
// runs the same fleet under a placement policy (legacy / rack-aware /
// exposure) so CI can byte-diff the legacy arm against the policy-free
// baseline and exercise the spread policies on the rebuild path.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/crc32.h"
#include "ebs/scenario.h"
#include "ec/maintenance.h"
#include "placement/policy.h"
#include "workload/fio.h"

namespace {

using namespace repro;
using transport::IoCompleteFn;
using transport::IoRequest;
using transport::IoResult;

struct Options {
  bool smoke = false;
  std::string scenario_file;
  std::string policy;
};

struct ArmResult {
  double cap = 0.0;  ///< bytes/sec, 0 = uncapped
  std::uint64_t cells_rebuilt = 0;
  double rebuilt_mbps = 0.0;
  std::uint64_t fg_completed = 0;
  double fg_p99_us = 0.0;
  std::uint64_t fingerprint = 0;
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h * 0xFF51AFD7ED558CCDull;
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (auto& b : v) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  return v;
}

/// The built-in EC fleet: one compute node, k+m+1 storage servers.
ebs::ScenarioSpec base_spec(bool smoke) {
  ebs::ScenarioSpec spec;
  spec.name = "ec_rebuild";
  spec.compute_nodes = 1;
  spec.storage_nodes = smoke ? 4 : 7;
  spec.servers_per_rack = smoke ? 4 : 7;
  spec.stack = ebs::StackKind::kSolar;
  spec.seed = 2027;
  spec.store_payload = true;
  ebs::VdSpec vd;
  vd.size_bytes = 64ull << 20;
  spec.vds.push_back(vd);
  spec.workload.read_fraction = 1.0;  // writes to a dead holder would wedge
  spec.workload.block_size = 4096;
  spec.workload.poisson_iops = 2000.0;
  spec.ec.enabled = true;
  spec.ec.k = smoke ? 2 : 4;
  spec.ec.m = smoke ? 1 : 2;
  spec.ec.rebuild_concurrency = 2;
  return spec;
}

ArmResult run_arm(const ebs::ScenarioSpec& spec, double cap,
                  std::uint64_t seed_bytes, TimeNs active) {
  ebs::ClusterParams p = ebs::params_from(spec);
  p.ec.rebuild_bandwidth_cap = cap;
  p.block_server.store_payload = true;
  // One throttled DPU core: rebuild sub-I/Os and guest reads fight for the
  // same dispatch point, so the cap's latency cost is measurable.
  p.dpu.cpu_cores = 1;
  p.solar.cpu_per_rpc = us(40);

  sim::Engine eng;
  ebs::Cluster cluster(eng, p);
  std::uint64_t vd = 0;
  for (const ebs::VdSpec& v : spec.vds) {
    vd = cluster.create_vd(v.size_bytes);
  }

  // Seed the data region with real payloads, one 8K write at a time (the
  // writes are the stripes the rebuild will have to reconstruct).
  for (std::uint64_t off = 0; off < seed_bytes; off += 8192) {
    IoRequest io;
    io.vd_id = vd;
    io.op = transport::OpType::kWrite;
    io.offset = off;
    io.len = 8192;
    io.payload = transport::make_placeholder_blocks(off, io.len, 4096);
    for (auto& blk : io.payload) {
      blk.data = pattern(blk.len, blk.lba + 1);
      blk.crc = crc32_raw(blk.data);
    }
    bool done = false;
    eng.at(eng.now(), [&] {
      cluster.compute(0).submit_io(std::move(io),
                                   [&done](IoResult r) {
                                     done = r.status ==
                                            transport::StorageStatus::kOk;
                                   });
    });
    eng.run();
    if (!done) {
      std::fprintf(stderr, "seed write at %llu failed\n",
                   static_cast<unsigned long long>(off));
      std::exit(1);
    }
  }

  // Foreground: an open-loop Poisson read stream over the seeded region,
  // with per-I/O latency capture for the p99.
  std::vector<TimeNs> lat;
  std::uint64_t fg_completed = 0;
  workload::PoissonConfig gc;
  gc.vd_id = vd;
  gc.vd_size = seed_bytes;
  gc.iops = spec.workload.poisson_iops;
  gc.read_fraction = 1.0;
  gc.block_size = spec.workload.block_size != 0 ? spec.workload.block_size
                                                : 4096;
  auto submit = [&](IoRequest io, IoCompleteFn done) {
    const TimeNs issued = eng.now();
    cluster.compute(0).submit_io(
        std::move(io),
        [&, issued, done = std::move(done)](IoResult r) {
          ++fg_completed;
          lat.push_back(eng.now() - issued);
          done(std::move(r));
        });
  };
  workload::PoissonLoad load(eng, submit, gc, Rng(909));
  eng.at(eng.now(), [&load] { load.start(); });

  // Fail-stop one fragment holder shortly into the run: device down (so
  // probes keep failing) plus the agent's belief (so the rebuild starts at
  // a deterministic instant, not after probe_failures_to_dead intervals).
  const auto frags = cluster.segments().ec_fragments(vd, 0);
  const net::IpAddr victim = frags[0].block_server;
  const TimeNs kill_at = eng.now() + ms(20);
  TimeNs rebuild_done_at = 0;
  eng.at(kill_at, [&] {
    for (int i = 0; i < cluster.num_storage(); ++i) {
      if (cluster.storage(i).nic().ip() == victim) {
        cluster.network().fail_device_stop(cluster.storage(i).nic());
      }
    }
    cluster.compute(0).ec()->mark_server(victim, false);
    cluster.compute(0).maintenance()->force_server_down(victim);
  });
  // Poll for rebuild completion (the curve's MTTR endpoint).
  std::function<void()> poll = [&] {
    ec::MaintenanceAgent* agent = cluster.compute(0).maintenance();
    if (rebuild_done_at == 0 && eng.now() > kill_at && agent->idle() &&
        agent->stats().segments_rebuilt > 0) {
      rebuild_done_at = eng.now();
      return;  // stop polling
    }
    eng.schedule_after(ms(2), [&] { poll(); });
  };
  eng.at(eng.now(), [&] { poll(); });

  const TimeNs end = eng.now() + active;
  eng.run_until(end);
  load.stop();

  ArmResult r;
  r.cap = cap;
  const ec::MaintenanceAgent::Stats& mstats =
      cluster.compute(0).maintenance()->stats();
  r.cells_rebuilt = mstats.cells_rebuilt;
  const TimeNs span =
      (rebuild_done_at != 0 ? rebuild_done_at : end) - kill_at;
  r.rebuilt_mbps = span > 0
                       ? static_cast<double>(r.cells_rebuilt) * 4096.0 *
                             1e9 / static_cast<double>(span) / 1e6
                       : 0.0;
  r.fg_completed = fg_completed;
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    const std::size_t idx =
        std::min(lat.size() - 1, lat.size() * 99 / 100);
    r.fg_p99_us = static_cast<double>(lat[idx]) / 1000.0;
  }
  std::uint64_t h = mix(eng.executed(), static_cast<std::uint64_t>(eng.now()));
  h = mix(h, fg_completed);
  h = mix(h, r.cells_rebuilt);
  h = mix(h, cluster.compute(0).ec()->stats().degraded_reads);
  r.fingerprint = h;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      o.smoke = true;
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      o.scenario_file = argv[++i];
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      o.policy = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--scenario spec.json] "
                   "[--policy legacy|rack-aware|exposure]\n",
                   argv[0]);
      return 2;
    }
  }

  ebs::ScenarioSpec spec = base_spec(o.smoke);
  if (!o.scenario_file.empty()) {
    std::ifstream f(o.scenario_file);
    if (!f) {
      std::fprintf(stderr, "cannot open scenario: %s\n",
                   o.scenario_file.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string err;
    if (!ebs::scenario_from_json(ss.str(), &spec, &err)) {
      std::fprintf(stderr, "bad scenario: %s\n", err.c_str());
      return 2;
    }
    if (!spec.ec.enabled) {
      std::fprintf(stderr, "scenario has no EC fleet (ec.enabled=false)\n");
      return 2;
    }
  }
  if (!o.policy.empty()) {
    spec.placement.enabled = true;
    if (!placement::policy_from_string(o.policy, &spec.placement.policy)) {
      std::fprintf(stderr, "unknown placement policy: %s\n",
                   o.policy.c_str());
      return 2;
    }
  }

  const std::uint64_t seed_bytes = o.smoke ? (4ull << 20) : (16ull << 20);
  const TimeNs active = o.smoke ? ms(600) : ms(1500);
  std::vector<double> caps = o.smoke
                                 ? std::vector<double>{2e6, 8e6, 0.0}
                                 : std::vector<double>{1e6, 4e6, 16e6, 0.0};

  bench::RunSummary summary("ec_rebuild",
                            "foreground p99 vs rebuild bandwidth (EC fleet)");
  std::printf("%-12s %14s %14s %12s %12s %18s\n", "cap", "cells_rebuilt",
              "rebuilt_MB/s", "fg_ios", "fg_p99_us", "fingerprint");
  std::vector<ArmResult> arms;
  for (const double cap : caps) {
    const ArmResult r = run_arm(spec, cap, seed_bytes, active);
    arms.push_back(r);
    char capname[32];
    if (cap <= 0.0) {
      std::snprintf(capname, sizeof capname, "uncapped");
    } else {
      std::snprintf(capname, sizeof capname, "%.0fMB/s", cap / 1e6);
    }
    std::printf("%-12s %14llu %14.2f %12llu %12.1f   %016llx\n", capname,
                static_cast<unsigned long long>(r.cells_rebuilt),
                r.rebuilt_mbps, static_cast<unsigned long long>(r.fg_completed),
                r.fg_p99_us, static_cast<unsigned long long>(r.fingerprint));
    summary.row()
        .set("cap_bytes_per_sec", r.cap)
        .set("cells_rebuilt", r.cells_rebuilt)
        .set("rebuilt_mbps", r.rebuilt_mbps)
        .set("fg_completed", r.fg_completed)
        .set("fg_p99_us", r.fg_p99_us)
        .set("fingerprint", r.fingerprint);
  }

  bool ok = true;
  const ArmResult& tight = arms.front();
  const ArmResult& open = arms.back();
  if (open.rebuilt_mbps <= tight.rebuilt_mbps) {
    std::fprintf(stderr,
                 "CAP NOT BINDING: uncapped rebuilt %.2f MB/s <= tightest "
                 "cap's %.2f MB/s\n",
                 open.rebuilt_mbps, tight.rebuilt_mbps);
    ok = false;
  }
  if (open.fg_p99_us < tight.fg_p99_us) {
    std::fprintf(stderr,
                 "CURVE NOT MONOTONE: uncapped fg p99 %.1f us < tightest "
                 "cap's %.1f us\n",
                 open.fg_p99_us, tight.fg_p99_us);
    ok = false;
  }
  // Bit-determinism: the tightest arm re-run must fingerprint equal.
  const ArmResult again = run_arm(spec, caps.front(), seed_bytes, active);
  if (again.fingerprint != tight.fingerprint) {
    std::fprintf(stderr, "DETERMINISM VIOLATION: %016llx != %016llx\n",
                 static_cast<unsigned long long>(again.fingerprint),
                 static_cast<unsigned long long>(tight.fingerprint));
    ok = false;
  }

  if (!summary.write()) {
    std::fprintf(stderr, "warning: could not write BENCH_ec_rebuild.json\n");
  }
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
