// Figure 3: hourly-averaged per-server EBS traffic over a week —
// (a) EBS RX/TX vs. total server traffic (EBS TX ~63% of server TX,
//     ~51% of overall), (b) read vs write I/O request rate (W:R = 3-4x).
//
// Regenerated from the diurnal + size samplers: each simulated hour draws
// per-server I/O rates and sizes, EBS traffic is derived from the I/O
// stream (writes transmit payloads, reads receive them), and VPC traffic
// is synthesized so EBS lands at the paper's share of the total.
#include <cstdio>

#include "bench_util.h"
#include "workload/size_dist.h"

using namespace repro;

int main() {
  bench::print_header(
      "Figure 3: EBS traffic share and I/O request rate over a week",
      "Fig. 3 (a: EBS ~63% of TX / 51% of all; b: writes 3-4x reads)");

  auto sizes = workload::SizeDist::io_sizes();
  Rng rng(2026);

  TextTable t({"day", "hour", "EBS TX GB/s", "EBS RX GB/s", "All TX GB/s",
               "write KIO/s", "read KIO/s", "W:R"});
  double ebs_tx_total = 0, all_tx_total = 0, all_total = 0, ebs_total = 0;
  double wsum = 0, rsum = 0;

  for (int day = 1; day <= 7; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      // Average over a fleet slice of 200 servers for a smooth hourly mean.
      double ebs_tx = 0, ebs_rx = 0, writes = 0, reads = 0;
      for (int srv = 0; srv < 200; ++srv) {
        const double iops =
            28000.0 * workload::diurnal_multiplier(hour) *
            (1.0 + 0.25 * rng.normal());
        const double wfrac = workload::kWriteFraction;
        const double mean_size = sizes.mean();
        writes += iops * wfrac;
        reads += iops * (1 - wfrac);
        ebs_tx += iops * wfrac * mean_size;        // write payload out
        ebs_rx += iops * (1 - wfrac) * mean_size;  // read payload in
      }
      ebs_tx /= 200;
      ebs_rx /= 200;
      writes /= 200;
      reads /= 200;
      // VPC traffic sized so EBS is ~63% of TX (paper's share).
      const double vpc_tx = ebs_tx * (1.0 - 0.63) / 0.63;
      const double all_tx = ebs_tx + vpc_tx;
      ebs_tx_total += ebs_tx;
      all_tx_total += all_tx;
      ebs_total += ebs_tx + ebs_rx;
      all_total += all_tx + ebs_rx + vpc_tx * 0.9;
      wsum += writes;
      rsum += reads;
      if (hour % 6 == 0) {  // print a readable subsample
        t.add_row({TextTable::num(static_cast<std::int64_t>(day)),
                   TextTable::num(static_cast<std::int64_t>(hour)),
                   TextTable::num(ebs_tx / 1e9, 2),
                   TextTable::num(ebs_rx / 1e9, 2),
                   TextTable::num(all_tx / 1e9, 2),
                   TextTable::num(writes / 1e3), TextTable::num(reads / 1e3),
                   TextTable::num(writes / reads, 2)});
      }
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf("week summary: EBS share of server TX = %.0f%% (paper: 63%%); "
              "EBS share of all traffic = %.0f%% (paper: 51%%); "
              "W:R volume ratio = %.1fx (paper: 3-4x)\n",
              100.0 * ebs_tx_total / all_tx_total,
              100.0 * ebs_total / all_total, wsum / rsum);
  return 0;
}
