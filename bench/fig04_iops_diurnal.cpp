// Figure 4: average IOPS monitored every minute over a day for a
// highly-loaded compute server — up to ~200K IOPS at the evening peak.
#include <cstdio>

#include "bench_util.h"
#include "workload/size_dist.h"

using namespace repro;

int main() {
  bench::print_header(
      "Figure 4: per-minute IOPS of a highly-loaded compute server",
      "Fig. 4 (peak ~200K IOPS, diurnal curve)");

  Rng rng(7);
  TextTable t({"hour", "min KIOPS", "avg KIOPS", "max KIOPS"});
  double day_peak = 0;
  for (int hour = 0; hour < 24; ++hour) {
    double lo = 1e18, hi = 0, sum = 0;
    for (int minute = 0; minute < 60; ++minute) {
      const double v = workload::fig4_iops(hour, rng);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    day_peak = std::max(day_peak, hi);
    t.add_row({TextTable::num(static_cast<std::int64_t>(hour)),
               TextTable::num(lo / 1e3), TextTable::num(sum / 60 / 1e3),
               TextTable::num(hi / 1e3)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("day peak: %.0fK IOPS (paper: up to ~200K IOPS/server)\n",
              day_peak / 1e3);
  return 0;
}
