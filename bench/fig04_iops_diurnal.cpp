// Figure 4: average IOPS monitored every minute over a day for a
// highly-loaded compute server — up to ~200K IOPS at the evening peak.
//
// By default the curve comes from the parametric Fig. 4 model. With
// --trace <file.jsonl> the load curve is sourced from a trace instead:
// records are bucketed into 24 equal "hours" of the trace's span, so a
// replayed production trace and the model render through the same table.
// --emit-trace <file.jsonl> writes the synthetic compressed-day trace the
// overload bench replays (Mooncake jsonl format).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/size_dist.h"
#include "workload/trace.h"

using namespace repro;

int main(int argc, char** argv) {
  std::string trace_file;
  std::string emit_file;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_file = argv[++i];
    } else if (std::strcmp(argv[i], "--emit-trace") == 0 && i + 1 < argc) {
      emit_file = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace t.jsonl] [--emit-trace t.jsonl]\n",
                   argv[0]);
      return 2;
    }
  }

  if (!emit_file.empty()) {
    workload::DiurnalTraceConfig dc;
    dc.peak_iops = 200000.0;
    dc.duration = ms(24);  // 1 ms per "hour"
    dc.vds = 2;
    const std::vector<workload::TraceRecord> records =
        workload::synth_diurnal_trace(dc, Rng(4242));
    std::ofstream os(emit_file, std::ios::trunc);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", emit_file.c_str());
      return 1;
    }
    os << workload::trace_to_jsonl(records);
    std::printf("emitted %zu records to %s\n", records.size(),
                emit_file.c_str());
    return 0;
  }

  bench::print_header(
      "Figure 4: per-minute IOPS of a highly-loaded compute server",
      "Fig. 4 (peak ~200K IOPS, diurnal curve)");

  TextTable t({"hour", "min KIOPS", "avg KIOPS", "max KIOPS"});
  double day_peak = 0;
  if (!trace_file.empty()) {
    std::vector<workload::TraceRecord> records;
    std::string err;
    if (!workload::load_trace_file(trace_file, &records, &err)) {
      std::fprintf(stderr, "bad trace: %s\n", err.c_str());
      return 1;
    }
    if (records.empty()) {
      std::fprintf(stderr, "empty trace: %s\n", trace_file.c_str());
      return 1;
    }
    // Bucket the trace's span into 24 "hours" x 60 "minutes" and read the
    // per-minute arrival rate back out, exactly like the model path below.
    TimeNs span = 0;
    for (const auto& r : records) span = std::max(span, r.at);
    span = std::max<TimeNs>(span + 1, 24 * 60);
    const double minute_ns = static_cast<double>(span) / (24.0 * 60.0);
    std::vector<std::uint64_t> per_minute(24 * 60, 0);
    for (const auto& r : records) {
      const auto m = std::min<std::size_t>(
          static_cast<std::size_t>(static_cast<double>(r.at) / minute_ns),
          per_minute.size() - 1);
      ++per_minute[m];
    }
    for (int hour = 0; hour < 24; ++hour) {
      double lo = 1e18, hi = 0, sum = 0;
      for (int minute = 0; minute < 60; ++minute) {
        const double v =
            static_cast<double>(per_minute[static_cast<std::size_t>(
                hour * 60 + minute)]) *
            1e9 / minute_ns;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        sum += v;
      }
      day_peak = std::max(day_peak, hi);
      t.add_row({TextTable::num(static_cast<std::int64_t>(hour)),
                 TextTable::num(lo / 1e3), TextTable::num(sum / 60 / 1e3),
                 TextTable::num(hi / 1e3)});
    }
    std::printf("%s", t.render().c_str());
    std::printf("day peak: %.0fK IOPS (trace-sourced from %s, %zu records)\n",
                day_peak / 1e3, trace_file.c_str(), records.size());
    return 0;
  }

  Rng rng(7);
  for (int hour = 0; hour < 24; ++hour) {
    double lo = 1e18, hi = 0, sum = 0;
    for (int minute = 0; minute < 60; ++minute) {
      const double v = workload::fig4_iops(hour, rng);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      sum += v;
    }
    day_peak = std::max(day_peak, hi);
    t.add_row({TextTable::num(static_cast<std::int64_t>(hour)),
               TextTable::num(lo / 1e3), TextTable::num(sum / 60 / 1e3),
               TextTable::num(hi / 1e3)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("day peak: %.0fK IOPS (paper: up to ~200K IOPS/server)\n",
              day_peak / 1e3);
  return 0;
}
