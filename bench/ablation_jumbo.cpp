// Ablation: 4KB vs 8KB one-block-one-packet (§4.8 "we use 4K bytes
// instead of 8K bytes for the jumbo frame to balance the congestion risk
// and the benefit").
//
// Incast scenario: one compute node reads bulk data striped over every
// storage server simultaneously (fan-in at its ToR ports). Larger frames
// occupy the shallow store-and-forward queues in bigger indivisible
// chunks, raising drop probability and tail latency.
#include <cstdio>

#include "bench_util.h"

using namespace repro;
using ebs::StackKind;

namespace {

struct Row {
  double p50_us, p99_us;
  std::uint64_t drops;
  double retx_rate;
};

Row run(std::uint32_t block_bytes) {
  auto params = bench::default_params(StackKind::kSolar, 1, 8, 77);
  params.solar.block_size = block_bytes;
  params.topo.queue_capacity = 96 * 1024;  // shallow switch buffers
  auto c = bench::make_cluster(params);
  auto& eng = *c.engine;

  // Prime, then incast-read 128KB I/Os (split across all storage nodes).
  workload::FioConfig cfg;
  cfg.vd_id = c.vds[0];
  cfg.block_size = 131072;
  cfg.iodepth = 24;
  cfg.read_fraction = 1.0;
  workload::FioJob job(eng, bench::submit_via(*c.cluster, 0), cfg, Rng(4));
  eng.at(0, [&] { job.start(); });
  eng.run_until(ms(25));
  job.metrics().clear();
  const auto drops0 = c.cluster->network().drops().queue_full;
  const auto retx0 = c.cluster->compute(0).solar()->stats().retransmits;
  const auto pkts0 = c.cluster->compute(0).solar()->stats().data_pkts_tx;
  eng.run_until(ms(100));
  job.stop();
  eng.run_until(eng.now() + ms(50));

  Row r;
  r.p50_us = to_us(job.metrics().total().percentile(0.5));
  r.p99_us = to_us(job.metrics().total().percentile(0.99));
  r.drops = c.cluster->network().drops().queue_full - drops0;
  const auto retx =
      c.cluster->compute(0).solar()->stats().retransmits - retx0;
  const auto pkts =
      c.cluster->compute(0).solar()->stats().data_pkts_tx - pkts0;
  r.retx_rate = pkts > 0 ? 100.0 * static_cast<double>(retx) /
                               static_cast<double>(pkts)
                         : 0.0;
  return r;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation: one-block-one-packet frame size, 4KB vs 8KB (incast)",
      "§4.8 'pros and cons of jumbo frame'");
  TextTable t({"block/packet", "p50 (us)", "p99 (us)", "queue drops",
               "retransmit %"});
  for (std::uint32_t bs : {4096u, 8192u}) {
    const Row r = run(bs);
    char label[16];
    std::snprintf(label, sizeof(label), "%uK", bs / 1024);
    t.add_row({label, TextTable::num(r.p50_us), TextTable::num(r.p99_us),
               TextTable::num(static_cast<std::int64_t>(r.drops)),
               TextTable::num(r.retx_rate, 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("expected shape: 8K frames raise incast drops and the p99 "
              "tail on shallow buffers — the reason the paper chose 4K\n");
  return 0;
}
