// Figure 7: the five-year evolution of per-server average I/O latency and
// IOPS as LUNA and then SOLAR rolled out — latency -72%, IOPS ~3.2x.
//
// Method: measure each stack generation's average 4KB-mixed latency and
// per-server achievable IOPS in the simulator, then blend them with the
// quarterly deployment fractions from the paper's narrative (LUNA ramping
// 2019Q1-2021Q1, SOLAR at scale from 2020Q4). The *measured* stack numbers
// drive the curve; only the rollout schedule is taken from the paper.
#include <cstdio>

#include "bench_util.h"

using namespace repro;
using ebs::StackKind;

namespace {

struct StackPerf {
  double avg_latency_us = 0;
  double kiops_per_server = 0;
};

StackPerf measure(StackKind stack) {
  StackPerf p;
  // Latency: shallow queue depth (what a guest's synchronous I/O sees).
  {
    auto params = bench::default_params(stack, 1, 8);
    if (stack == StackKind::kSolar) params.on_dpu = true;
    auto c = bench::make_cluster(params);
    workload::FioConfig cfg;
    cfg.block_size = 0;  // production size mix
    cfg.iodepth = 12;    // production-loaded server, not an idle lab
    cfg.read_fraction = 1.0 - workload::kWriteFraction;
    auto res = bench::run_fio(*&c, cfg, ms(10), ms(40));
    p.avg_latency_us = to_us(static_cast<TimeNs>(res.metrics.total().mean()));
  }
  // IOPS capability: deep queue of 4KB I/Os on a *single core* (the
  // paper's per-core basis, Fig. 14b / §4.8; fleet IOPS scales with the
  // per-era core budget).
  {
    auto params = bench::default_params(stack, 1, 8);
    if (stack == StackKind::kSolar) params.on_dpu = true;
    params.host_cpu_cores = 1;
    params.dpu.cpu_cores = 1;
    auto c = bench::make_cluster(params);
    workload::FioConfig cfg;
    cfg.block_size = 4096;
    cfg.iodepth = 64;
    cfg.read_fraction = 1.0 - workload::kWriteFraction;
    auto res = bench::run_fio(*&c, cfg, ms(10), ms(40));
    p.kiops_per_server = res.metrics.iops(res.measured_ns) / 1e3;
  }
  return p;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 7: evolution of average latency and IOPS per server",
      "Fig. 7 (latency -72%, IOPS ~3.2x over 2019Q1-2021Q4)");

  const StackPerf kernel = measure(StackKind::kKernelTcp);
  const StackPerf luna = measure(StackKind::kLuna);
  const StackPerf solar = measure(StackKind::kSolar);
  std::printf("measured per-stack (size-mix fio, depth 16): kernel %.0fus/"
              "%.0fK, luna %.0fus/%.0fK, solar %.0fus/%.0fK\n\n",
              kernel.avg_latency_us, kernel.kiops_per_server,
              luna.avg_latency_us, luna.kiops_per_server,
              solar.avg_latency_us, solar.kiops_per_server);

  // Deployment fractions per quarter (paper narrative: LUNA released 2019,
  // fully deployed 2021Q1; SOLAR deployed from 2020, at scale 2021).
  struct Quarter {
    const char* name;
    double luna;
    double solar;
  };
  const Quarter quarters[] = {
      {"19Q1", 0.05, 0.00}, {"19Q2", 0.15, 0.00}, {"19Q3", 0.30, 0.00},
      {"19Q4", 0.45, 0.00}, {"20Q1", 0.60, 0.02}, {"20Q2", 0.72, 0.06},
      {"20Q3", 0.82, 0.12}, {"20Q4", 0.90, 0.20}, {"21Q1", 0.97, 0.30},
      {"21Q2", 0.80, 0.45}, {"21Q3", 0.55, 0.65}, {"21Q4", 0.35, 0.85},
  };

  TextTable t({"quarter", "luna %", "solar %", "avg latency (us)",
               "norm latency", "KIOPS", "norm IOPS"});
  double lat0 = 0, iops_last = 0;
  std::vector<std::array<double, 2>> series;
  for (const auto& q : quarters) {
    const double kernel_frac = std::max(0.0, 1.0 - q.luna - q.solar);
    const double lat = kernel_frac * kernel.avg_latency_us +
                       q.luna * luna.avg_latency_us +
                       q.solar * solar.avg_latency_us;
    const double iops = kernel_frac * kernel.kiops_per_server +
                        q.luna * luna.kiops_per_server +
                        q.solar * solar.kiops_per_server;
    if (lat0 == 0) lat0 = lat;
    iops_last = iops;
    series.push_back({lat, iops});
  }
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& q = quarters[i];
    t.add_row({q.name, TextTable::num(100 * q.luna, 0),
               TextTable::num(100 * q.solar, 0),
               TextTable::num(series[i][0], 0),
               TextTable::num(series[i][0] / lat0, 2),
               TextTable::num(series[i][1], 0),
               TextTable::num(series[i][1] / iops_last, 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("shape: latency reduction over the period = %.0f%% "
              "(paper: 72%%); IOPS scale-up = %.1fx (paper: ~3.2x)\n",
              100.0 * (1.0 - series.back()[0] / lat0),
              series.back()[1] / series.front()[1]);
  return 0;
}
