// Figure 7: the five-year evolution of per-server average I/O latency and
// IOPS as LUNA and then SOLAR rolled out — latency -72%, IOPS ~3.2x.
//
// Method: measure each stack generation's average 4KB-mixed latency and
// per-server achievable IOPS in the simulator, then blend them with the
// quarterly deployment fractions from the paper's narrative (LUNA ramping
// 2019Q1-2021Q1, SOLAR at scale from 2020Q4). The *measured* stack numbers
// drive the curve; only the rollout schedule is taken from the paper.
//
// --rollout simulates the transition *directly* instead of blending: one
// heterogeneous cluster per step, the fleet stepping node-by-node from 100%
// LUNA to 100% SOLAR, every node driving load over the shared fabric at
// once. --scenario FILE replaces the built-in base ScenarioSpec.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "bench_json.h"
#include "bench_util.h"

using namespace repro;
using ebs::StackKind;

namespace {

struct StackPerf {
  double avg_latency_us = 0;
  double kiops_per_server = 0;
};

StackPerf measure(StackKind stack) {
  StackPerf p;
  // Latency: shallow queue depth (what a guest's synchronous I/O sees).
  {
    auto params = bench::default_params(stack, 1, 8);
    if (stack == StackKind::kSolar) params.on_dpu = true;
    auto c = bench::make_cluster(params);
    workload::FioConfig cfg;
    cfg.block_size = 0;  // production size mix
    cfg.iodepth = 12;    // production-loaded server, not an idle lab
    cfg.read_fraction = 1.0 - workload::kWriteFraction;
    auto res = bench::run_fio(*&c, cfg, ms(10), ms(40));
    p.avg_latency_us = to_us(static_cast<TimeNs>(res.metrics.total().mean()));
  }
  // IOPS capability: deep queue of 4KB I/Os on a *single core* (the
  // paper's per-core basis, Fig. 14b / §4.8; fleet IOPS scales with the
  // per-era core budget).
  {
    auto params = bench::default_params(stack, 1, 8);
    if (stack == StackKind::kSolar) params.on_dpu = true;
    params.host_cpu_cores = 1;
    params.dpu.cpu_cores = 1;
    auto c = bench::make_cluster(params);
    workload::FioConfig cfg;
    cfg.block_size = 4096;
    cfg.iodepth = 64;
    cfg.read_fraction = 1.0 - workload::kWriteFraction;
    auto res = bench::run_fio(*&c, cfg, ms(10), ms(40));
    p.kiops_per_server = res.metrics.iops(res.measured_ns) / 1e3;
  }
  return p;
}

/// The built-in rollout scenario: a 4-node fleet under a production-mix
/// closed loop, small enough for CI yet enough nodes to see the blend move.
ebs::ScenarioSpec rollout_scenario() {
  ebs::ScenarioSpec spec = bench::default_scenario(StackKind::kLuna, 4, 8);
  spec.name = "fig07_rollout";
  spec.workload.block_size = 4096;
  spec.workload.iodepth = 16;
  spec.workload.read_fraction = 1.0 - workload::kWriteFraction;
  return spec;
}

/// One rollout step: first `solar_nodes` of the fleet converted to SOLAR,
/// the rest still LUNA, all driving the shared fabric simultaneously.
struct StepResult {
  double agg_kiops = 0;
  double mean_latency_us = 0;
};

StepResult run_step(const ebs::ScenarioSpec& base, int solar_nodes) {
  ebs::ScenarioSpec spec = base;
  const int n = spec.compute_nodes;
  spec.compute_stacks.assign(static_cast<std::size_t>(n), StackKind::kLuna);
  for (int i = 0; i < solar_nodes; ++i) {
    spec.compute_stacks[static_cast<std::size_t>(i)] = StackKind::kSolar;
  }
  auto c = bench::make_cluster(spec);
  auto& eng = *c.engine;

  std::vector<std::unique_ptr<workload::FioJob>> jobs;
  for (int i = 0; i < n; ++i) {
    workload::FioConfig cfg;
    cfg.vd_id = c.vds[static_cast<std::size_t>(i)];
    cfg.vd_size = spec.vd_size_bytes;
    cfg.block_size = spec.workload.block_size;
    cfg.iodepth = spec.workload.iodepth;
    cfg.read_fraction = spec.workload.read_fraction;
    cfg.sequential = spec.workload.sequential;
    cfg.real_payload = spec.workload.real_payload;
    jobs.push_back(std::make_unique<workload::FioJob>(
        eng, bench::submit_via(*c.cluster, i), cfg,
        Rng(7 + static_cast<std::uint64_t>(i))));
  }
  eng.at(eng.now(), [&] {
    for (auto& j : jobs) j->start();
  });
  eng.run_until(eng.now() + ms(10));
  for (auto& j : jobs) j->metrics().clear();
  c.cluster->reset_warmup();
  const TimeNs t0 = eng.now();
  eng.run_until(t0 + ms(40));
  for (auto& j : jobs) j->stop();
  const TimeNs measured = eng.now() - t0;

  StepResult r;
  double lat_weighted = 0;
  std::uint64_t ios = 0;
  for (auto& j : jobs) {
    r.agg_kiops += j->metrics().iops(measured) / 1e3;
    lat_weighted += j->metrics().total().mean() *
                    static_cast<double>(j->metrics().ios());
    ios += j->metrics().ios();
  }
  if (ios > 0) {
    r.mean_latency_us =
        to_us(static_cast<TimeNs>(lat_weighted / static_cast<double>(ios)));
  }
  eng.run_until(eng.now() + ms(50));  // drain before teardown
  return r;
}

int run_rollout(const std::string& scenario_file) {
  ebs::ScenarioSpec spec = rollout_scenario();
  if (!scenario_file.empty()) {
    std::ifstream f(scenario_file);
    if (!f) {
      std::fprintf(stderr, "fig07: cannot open %s\n", scenario_file.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    std::string err;
    if (!ebs::scenario_from_json(ss.str(), &spec, &err)) {
      std::fprintf(stderr, "fig07: bad scenario %s: %s\n",
                   scenario_file.c_str(), err.c_str());
      return 2;
    }
  }

  bench::print_header(
      "Figure 7 (rollout): LUNA->SOLAR transition on one shared fabric",
      "Fig. 7 (mixed fleet; heterogeneous cluster per step)");
  std::printf("scenario: %s\n\n", spec.to_json().c_str());

  const int n = spec.compute_nodes;
  bench::RunSummary summary("fig07_rollout",
                            "Fig. 7 (mixed-fleet rollout steps)");
  TextTable t({"solar nodes", "solar %", "agg KIOPS", "mean latency (us)"});
  double first_lat = 0, first_kiops = 0;
  StepResult last;
  for (int k = 0; k <= n; ++k) {
    const StepResult r = run_step(spec, k);
    if (k == 0) {
      first_lat = r.mean_latency_us;
      first_kiops = r.agg_kiops;
    }
    last = r;
    t.add_row({TextTable::num(k, 0), TextTable::num(100.0 * k / n, 0),
               TextTable::num(r.agg_kiops, 0),
               TextTable::num(r.mean_latency_us, 1)});
    summary.row()
        .set("solar_nodes", static_cast<std::int64_t>(k))
        .set("solar_fraction", static_cast<double>(k) / n)
        .set("agg_kiops", r.agg_kiops)
        .set("mean_latency_us", r.mean_latency_us);
  }
  std::printf("%s", t.render().c_str());
  if (first_lat > 0 && first_kiops > 0) {
    std::printf("shape: full conversion cuts mean latency %.0f%% and lifts "
                "aggregate IOPS %.1fx on the same fabric\n",
                100.0 * (1.0 - last.mean_latency_us / first_lat),
                last.agg_kiops / first_kiops);
  }
  summary.write();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool rollout = false;
  std::string scenario_file;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--rollout") {
      rollout = true;
    } else if (a == "--scenario" && i + 1 < argc) {
      scenario_file = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: fig07_evolution [--rollout [--scenario FILE]]\n");
      return 2;
    }
  }
  if (rollout) return run_rollout(scenario_file);

  bench::print_header(
      "Figure 7: evolution of average latency and IOPS per server",
      "Fig. 7 (latency -72%, IOPS ~3.2x over 2019Q1-2021Q4)");

  const StackPerf kernel = measure(StackKind::kKernelTcp);
  const StackPerf luna = measure(StackKind::kLuna);
  const StackPerf solar = measure(StackKind::kSolar);
  std::printf("measured per-stack (size-mix fio, depth 16): kernel %.0fus/"
              "%.0fK, luna %.0fus/%.0fK, solar %.0fus/%.0fK\n\n",
              kernel.avg_latency_us, kernel.kiops_per_server,
              luna.avg_latency_us, luna.kiops_per_server,
              solar.avg_latency_us, solar.kiops_per_server);

  // Deployment fractions per quarter (paper narrative: LUNA released 2019,
  // fully deployed 2021Q1; SOLAR deployed from 2020, at scale 2021).
  struct Quarter {
    const char* name;
    double luna;
    double solar;
  };
  const Quarter quarters[] = {
      {"19Q1", 0.05, 0.00}, {"19Q2", 0.15, 0.00}, {"19Q3", 0.30, 0.00},
      {"19Q4", 0.45, 0.00}, {"20Q1", 0.60, 0.02}, {"20Q2", 0.72, 0.06},
      {"20Q3", 0.82, 0.12}, {"20Q4", 0.90, 0.20}, {"21Q1", 0.97, 0.30},
      {"21Q2", 0.80, 0.45}, {"21Q3", 0.55, 0.65}, {"21Q4", 0.35, 0.85},
  };

  TextTable t({"quarter", "luna %", "solar %", "avg latency (us)",
               "norm latency", "KIOPS", "norm IOPS"});
  double lat0 = 0, iops_last = 0;
  std::vector<std::array<double, 2>> series;
  for (const auto& q : quarters) {
    const double kernel_frac = std::max(0.0, 1.0 - q.luna - q.solar);
    const double lat = kernel_frac * kernel.avg_latency_us +
                       q.luna * luna.avg_latency_us +
                       q.solar * solar.avg_latency_us;
    const double iops = kernel_frac * kernel.kiops_per_server +
                        q.luna * luna.kiops_per_server +
                        q.solar * solar.kiops_per_server;
    if (lat0 == 0) lat0 = lat;
    iops_last = iops;
    series.push_back({lat, iops});
  }
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& q = quarters[i];
    t.add_row({q.name, TextTable::num(100 * q.luna, 0),
               TextTable::num(100 * q.solar, 0),
               TextTable::num(series[i][0], 0),
               TextTable::num(series[i][0] / lat0, 2),
               TextTable::num(series[i][1], 0),
               TextTable::num(series[i][1] / iops_last, 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("shape: latency reduction over the period = %.0f%% "
              "(paper: 72%%); IOPS scale-up = %.1fx (paper: ~3.2x)\n",
              100.0 * (1.0 - series.back()[0] / lat0),
              series.back()[1] / series.front()[1]);
  return 0;
}
