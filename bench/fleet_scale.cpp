// Fleet-scale benchmark: a 1 000-node, 100 000-VD EBS fleet on the sharded
// parallel engine, swept across worker thread counts.
//
// The scenario is the paper's deployment shape at cluster scale: 500
// compute + 500 storage servers in a two-pod Clos, 100 K virtual disks
// striped 4-wide, and an open-loop Poisson stream per compute node whose
// submits round-robin the node's VD slice so every VD carries traffic.
// Each thread count re-runs the identical scenario and the benchmark
// asserts the run fingerprint (executed events, end time, per-node
// completion counts) is bit-identical — the determinism contract — before
// reporting wall-clock, events/s and speedup vs one thread into
// BENCH_fleet_scale.json.
//
// Speedup is hardware-honest: on a single-CPU container every thread count
// measures the same core plus synchronization overhead, so the interesting
// column there is determinism, not scaling (see EXPERIMENTS.md).
//
// --smoke shrinks the fleet for CI (seconds, not minutes).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "ebs/cluster.h"
#include "workload/fio.h"

namespace {

using namespace repro;
using transport::IoCompleteFn;
using transport::IoRequest;
using transport::IoResult;

struct Options {
  int nodes = 1000;       ///< total servers, split evenly compute/storage
  int vds = 100000;
  int shards = 8;
  std::vector<int> threads = {1, 2, 8};
  TimeNs active = ms(20);
  double iops_per_node = 200.0;
  std::uint64_t vd_size = 256ull << 20;
};

struct RunResult {
  std::uint64_t executed = 0;
  TimeNs end_time = 0;
  std::uint64_t ios_completed = 0;
  std::uint64_t fingerprint = 0;
  double wall_s = 0.0;
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h * 0xFF51AFD7ED558CCDull;
}

RunResult run_fleet(const Options& o, int threads) {
  sim::ShardedEngine se(o.shards, threads);
  ebs::ClusterParams p;
  p.topo.compute_servers = o.nodes / 2;
  p.topo.storage_servers = o.nodes - o.nodes / 2;
  p.topo.servers_per_rack = 8;
  p.topo.spines_per_pod = 4;
  p.topo.core_switches = 4;
  // Coarser fabric propagation = coarser conservative lookahead: fleet runs
  // trade a little wire realism for an order of magnitude fewer epochs.
  p.topo.fabric_prop = us(2);
  p.stack = ebs::StackKind::kSolar;
  p.seed = 42;
  p.vd_stripe_width = 4;
  ebs::Cluster cluster(se, p);

  const std::uint64_t first_vd = cluster.create_vd(o.vd_size);
  for (int v = 1; v < o.vds; ++v) cluster.create_vd(o.vd_size);

  const int ncompute = cluster.num_compute();
  const std::uint64_t span =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(o.vds) /
                                     static_cast<std::uint64_t>(ncompute));
  struct NodeLoad {
    std::unique_ptr<workload::PoissonLoad> gen;
    std::uint64_t next_vd = 0;
    std::uint64_t completed = 0;
  };
  std::vector<NodeLoad> loads(static_cast<std::size_t>(ncompute));

  Rng rng(777);
  for (int i = 0; i < ncompute; ++i) {
    // Round-robin the node's VD slice: the generator picks offsets for one
    // vd_size (all VDs are equal-sized), the wrapper retargets the vd id.
    const std::uint64_t base =
        first_vd + static_cast<std::uint64_t>(i) * span;
    auto submit = [&cluster, &loads, i, base, span](IoRequest io,
                                                    IoCompleteFn done) {
      NodeLoad& nl = loads[static_cast<std::size_t>(i)];
      io.vd_id = base + (nl.next_vd++ % span);
      cluster.compute(i).submit_io(
          std::move(io),
          [&loads, i, done = std::move(done)](IoResult res) {
            ++loads[static_cast<std::size_t>(i)].completed;
            done(std::move(res));
          });
    };
    workload::PoissonConfig pc;
    pc.vd_id = base;
    pc.vd_size = o.vd_size;
    pc.iops = o.iops_per_node;
    pc.read_fraction = 0.7;
    pc.block_size = 4096;
    sim::ShardScope scope(cluster.compute_shard(i));
    loads[static_cast<std::size_t>(i)].gen =
        std::make_unique<workload::PoissonLoad>(
            cluster.engine(), submit, pc,
            rng.fork(static_cast<std::uint64_t>(i)));
  }

  const auto wall0 = std::chrono::steady_clock::now();
  for (int i = 0; i < ncompute; ++i) {
    sim::ShardScope scope(cluster.compute_shard(i));
    sim::Engine& he = cluster.engine();
    he.at(he.now(), [&loads, i] {
      loads[static_cast<std::size_t>(i)].gen->start();
    });
  }
  se.run_until(o.active);
  for (int i = 0; i < ncompute; ++i) {
    sim::ShardScope scope(cluster.compute_shard(i));
    loads[static_cast<std::size_t>(i)].gen->stop();
  }
  se.run();  // drain outstanding I/Os
  const auto wall1 = std::chrono::steady_clock::now();

  RunResult r;
  r.executed = se.executed();
  r.end_time = se.now();
  r.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  std::uint64_t h = mix(r.executed, static_cast<std::uint64_t>(r.end_time));
  for (const NodeLoad& nl : loads) {
    r.ios_completed += nl.completed;
    h = mix(h, nl.completed);
  }
  h = mix(h, cluster.network().drops_total().total());
  r.fingerprint = h;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      o.nodes = 40;
      o.vds = 2000;
      o.shards = 4;
      o.threads = {1, 2};
      o.active = ms(2);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      o.threads.clear();
      for (char* tok = std::strtok(argv[++i], ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        o.threads.push_back(std::atoi(tok));
      }
    } else if (std::strcmp(argv[i], "--vds") == 0 && i + 1 < argc) {
      o.vds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      o.nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--active-ms") == 0 && i + 1 < argc) {
      o.active = ms(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--threads 1,2,8] [--vds N] "
                   "[--nodes N] [--active-ms N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf(
      "fleet_scale: %d nodes, %d vds, %d shards, active %lld ms\n",
      o.nodes, o.vds, o.shards,
      static_cast<long long>(o.active / 1000000));
  std::printf("%8s %14s %12s %10s %10s %18s\n", "threads", "executed",
              "ios_done", "wall_s", "speedup", "fingerprint");

  repro::bench::RunSummary summary("fleet_scale",
                                   "SIGCOMM'22 Luna/Solar, fleet scale");
  double wall_1t = 0.0;
  std::uint64_t want_fingerprint = 0;
  bool first = true;
  for (int t : o.threads) {
    const RunResult r = run_fleet(o, t);
    if (first) {
      wall_1t = r.wall_s;
      want_fingerprint = r.fingerprint;
      first = false;
    } else if (r.fingerprint != want_fingerprint) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: fingerprint %016llx at %d "
                   "threads != %016llx\n",
                   static_cast<unsigned long long>(r.fingerprint), t,
                   static_cast<unsigned long long>(want_fingerprint));
      return 1;
    }
    const double speedup = r.wall_s > 0.0 ? wall_1t / r.wall_s : 0.0;
    std::printf("%8d %14llu %12llu %10.2f %10.2f   %016llx\n", t,
                static_cast<unsigned long long>(r.executed),
                static_cast<unsigned long long>(r.ios_completed), r.wall_s,
                speedup, static_cast<unsigned long long>(r.fingerprint));
    summary.row()
        .set("threads", static_cast<std::int64_t>(t))
        .set("shards", static_cast<std::int64_t>(o.shards))
        .set("nodes", static_cast<std::int64_t>(o.nodes))
        .set("vds", static_cast<std::int64_t>(o.vds))
        .set("executed", r.executed)
        .set("end_time_ns", static_cast<std::int64_t>(r.end_time))
        .set("ios_completed", r.ios_completed)
        .set("wall_s", r.wall_s)
        .set("events_per_sec",
             r.wall_s > 0.0 ? static_cast<double>(r.executed) / r.wall_s
                            : 0.0)
        .set("speedup_vs_1t", speedup)
        .set("fingerprint", r.fingerprint);
  }
  summary.write();
  std::printf("determinism: fingerprints identical across all %zu thread "
              "counts\n",
              o.threads.size());
  return 0;
}
