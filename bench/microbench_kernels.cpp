// Microbenchmarks for the dispatched data-plane kernels (src/kernels):
// GB/s per kernel per tier — GF(256) multiply-accumulate, the fused
// multi-row EC encode vs the row-at-a-time structure it replaced, CRC-32
// (slice-by-8 scalar vs CLMUL-folded), and word-wide XOR accumulate.
//
// Every benchmark registers once per tier in `available_tiers()` (so a
// REPRO_KERNEL_DISPATCH pin benches only the pinned tier) and reports
// bytes/second; BENCH_kernels.json is the machine-readable mirror. The
// perf gate this starts: best native tier >= 4x scalar on mul_acc and CRC32.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gbench_main.h"
#include "kernels/kernels.h"

namespace repro {
namespace {

namespace kn = repro::kernels;

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next());
  return v;
}

void bm_gf_mul_acc(benchmark::State& state, kn::Tier tier) {
  kn::set_tier(tier);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto in = random_bytes(n, 1);
  auto out = random_bytes(n, 2);
  for (auto _ : state) {
    kn::active().gf_mul_acc(0x53, in.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

// The EC hot shape: one 4 KB cell per data fragment, all parity rows.
// Fused = one kernel call; per-row = m independent mul_acc sweeps (the
// pre-kernel Codec structure). Bytes processed = data streamed (k * n).
constexpr int kEncK = 8;
constexpr int kEncM = 3;
constexpr std::size_t kCell = 4096;

struct EncodeBuffers {
  std::vector<std::vector<std::uint8_t>> data;
  std::vector<std::vector<std::uint8_t>> parity;
  std::vector<std::vector<std::uint8_t>> coef;
  std::vector<const std::uint8_t*> data_ptrs;
  std::vector<std::uint8_t*> parity_ptrs;
  std::vector<const std::uint8_t*> coef_rows;

  EncodeBuffers() {
    for (int p = 0; p < kEncK; ++p) {
      data.push_back(random_bytes(kCell, static_cast<std::uint64_t>(p) + 1));
    }
    parity.assign(kEncM, std::vector<std::uint8_t>(kCell, 0));
    for (int q = 0; q < kEncM; ++q) {
      std::vector<std::uint8_t> row;
      for (int p = 0; p < kEncK; ++p) {
        row.push_back(static_cast<std::uint8_t>(q * 29 + p * 13 + 3));
      }
      coef.push_back(std::move(row));
    }
    for (auto& d : data) data_ptrs.push_back(d.data());
    for (auto& pr : parity) parity_ptrs.push_back(pr.data());
    for (auto& c : coef) coef_rows.push_back(c.data());
  }
};

void bm_ec_encode_fused(benchmark::State& state, kn::Tier tier) {
  kn::set_tier(tier);
  EncodeBuffers b;
  for (auto _ : state) {
    kn::active().ec_encode(kEncK, kEncM, b.coef_rows.data(),
                           b.data_ptrs.data(), b.parity_ptrs.data(), kCell);
    benchmark::DoNotOptimize(b.parity_ptrs.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kEncK * static_cast<std::int64_t>(kCell));
}

void bm_ec_encode_per_row(benchmark::State& state, kn::Tier tier) {
  kn::set_tier(tier);
  EncodeBuffers b;
  for (auto _ : state) {
    // Row-major sweeps: every parity row re-streams all k data fragments —
    // what Codec::encode_parity per q used to cost.
    for (int q = 0; q < kEncM; ++q) {
      std::memset(b.parity_ptrs[static_cast<std::size_t>(q)], 0, kCell);
      for (int p = 0; p < kEncK; ++p) {
        kn::active().gf_mul_acc(
            b.coef[static_cast<std::size_t>(q)][static_cast<std::size_t>(p)],
            b.data_ptrs[static_cast<std::size_t>(p)],
            b.parity_ptrs[static_cast<std::size_t>(q)], kCell);
      }
    }
    benchmark::DoNotOptimize(b.parity_ptrs.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kEncK * static_cast<std::int64_t>(kCell));
}

void bm_crc32(benchmark::State& state, kn::Tier tier) {
  kn::set_tier(tier);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto buf = random_bytes(n, 7);
  std::uint32_t crc = 0;
  for (auto _ : state) {
    crc = kn::active().crc32_update(crc, buf.data(), n);
    benchmark::DoNotOptimize(crc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void bm_xor_acc(benchmark::State& state, kn::Tier tier) {
  kn::set_tier(tier);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto src = random_bytes(n, 3);
  auto dst = random_bytes(n, 4);
  for (auto _ : state) {
    kn::active().xor_acc(dst.data(), src.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void register_all() {
  for (kn::Tier tier : kn::available_tiers()) {
    const std::string t = kn::tier_name(tier);
    benchmark::RegisterBenchmark(("BM_GfMulAcc/" + t).c_str(), bm_gf_mul_acc,
                                 tier)
        ->Arg(4096)
        ->Arg(65536);
    benchmark::RegisterBenchmark(("BM_EcEncodeFused/" + t).c_str(),
                                 bm_ec_encode_fused, tier);
    benchmark::RegisterBenchmark(("BM_EcEncodePerRow/" + t).c_str(),
                                 bm_ec_encode_per_row, tier);
    benchmark::RegisterBenchmark(("BM_Crc32/" + t).c_str(), bm_crc32, tier)
        ->Arg(4096)
        ->Arg(65536);
    benchmark::RegisterBenchmark(("BM_XorAcc/" + t).c_str(), bm_xor_acc, tier)
        ->Arg(4096);
  }
}

}  // namespace
}  // namespace repro

int main(int argc, char** argv) {
  repro::register_all();
  return repro::bench::run_gbench_main(argc, argv, "BENCH_kernels.json");
}
