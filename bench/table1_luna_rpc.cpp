// Table 1: FN RPC latency and consumed CPU cores, kernel TCP vs LUNA,
// on 2x25GE and 2x100GE hosts — a transport-only experiment (no storage):
//
//   (a) 2x25GE : single 4KB RPC 70.1 -> 13.1 us; 50G stress 1782/4c -> 900/1c
//   (b) 2x100GE: single 4KB RPC 43.4 -> 12.4 us; 200G stress 2923/12c -> 465/4c
//
// Absolute numbers depend on the authors' hosts; the shape to reproduce is
// kernel ~3-5x the latency and ~3-4x the cores of LUNA, with the gap
// widening at 2x100GE.
#include <cstdio>

#include "bench_util.h"
#include "net/topology.h"
#include "transport/tcp.h"

using namespace repro;

namespace {

struct RpcRig {
  sim::Engine eng;
  net::Network net;
  net::Clos clos;
  sim::CpuPool client_cpu;
  sim::CpuPool server_cpu;
  std::unique_ptr<transport::TcpStack> client;
  std::unique_ptr<transport::TcpStack> server;

  RpcRig(BitsPerSec host_link, const transport::TcpCostProfile& profile)
      : net(eng, net::NetworkParams{}, 17),
        clos([&] {
          net::ClosConfig cfg;
          cfg.compute_servers = 1;
          cfg.storage_servers = 1;
          cfg.servers_per_rack = 1;
          cfg.host_link_rate = host_link;
          cfg.fabric_link_rate = std::max(host_link * 4, gbps(100));
          return net::build_clos(net, cfg);
        }()),
        client_cpu(eng, "client", 16, sim::CpuPool::Dispatch::kByHash),
        server_cpu(eng, "server", 16, sim::CpuPool::Dispatch::kByHash) {
    client = std::make_unique<transport::TcpStack>(eng, *clos.compute[0],
                                                   client_cpu, profile,
                                                   Rng(1));
    server = std::make_unique<transport::TcpStack>(eng, *clos.storage[0],
                                                   server_cpu, profile,
                                                   Rng(2));
    server->set_handler([](transport::StorageRequest req,
                           std::function<void(transport::StorageResponse)>
                               reply) {
      transport::StorageResponse resp;
      if (req.op == transport::OpType::kRead) {
        resp.blocks = transport::make_placeholder_blocks(0, req.len, 4096);
      }
      reply(std::move(resp));
    });
  }

  transport::StorageRequest rpc(std::uint32_t len) {
    transport::StorageRequest req;
    req.op = transport::OpType::kWrite;
    req.len = len;
    req.blocks = transport::make_placeholder_blocks(0, len, 4096);
    return req;
  }

  double single_rpc_latency_us(int samples = 150) {
    SampleSet lat;
    for (int i = 0; i < samples; ++i) {
      const TimeNs t0 = eng.now();
      bool done = false;
      eng.at(eng.now(), [&] {
        client->call(clos.storage[0]->ip(), rpc(4096),
                     [&](transport::StorageResponse) { done = true; });
      });
      while (!done && eng.step()) {
      }
      lat.record(to_us(eng.now() - t0));
      eng.run_until(eng.now() + us(30));  // small gap between probes
    }
    return lat.mean();
  }

  /// Closed-loop 128KB RPCs at the given concurrency; returns (avg latency
  /// us, consumed cores, achieved Gbps) over the measure window.
  struct StressResult {
    double avg_latency_us;
    double cores;
    double gbps_achieved;
  };
  StressResult stress(int concurrency, TimeNs warmup, TimeNs measure) {
    constexpr std::uint32_t kLen = 131072;
    std::uint64_t completed = 0;
    std::uint64_t bytes = 0;
    SampleSet lat;
    bool measuring = false;
    std::function<void()> issue = [&] {
      const TimeNs t0 = eng.now();
      client->call(clos.storage[0]->ip(), rpc(kLen),
                   [&, t0](transport::StorageResponse) {
                     if (measuring) {
                       ++completed;
                       bytes += kLen;
                       lat.record(to_us(eng.now() - t0));
                     }
                     issue();
                   });
    };
    eng.at(eng.now(), [&] {
      for (int i = 0; i < concurrency; ++i) issue();
    });
    eng.run_until(eng.now() + warmup);
    measuring = true;
    client_cpu.reset_accounting();
    const TimeNs m0 = eng.now();
    eng.run_until(m0 + measure);
    measuring = false;
    StressResult res;
    res.avg_latency_us = lat.mean();
    res.cores = client_cpu.consumed_cores(eng.now() - m0);
    res.gbps_achieved = throughput_bps(bytes, eng.now() - m0) / 1e9;
    return res;
  }
};

void run_variant(const char* label, BitsPerSec host_link, int concurrency) {
  TextTable t({"", "Avg RPC latency (us)", "Consumed cores", "Gbps"});
  double kernel_single = 0, luna_single = 0;
  double kernel_cores = 0, luna_cores = 0;
  for (const bool kernel : {true, false}) {
    auto profile = kernel ? transport::kernel_tcp_profile()
                          : transport::luna_profile();
    // Production deployments stripe RPCs over many connections; the
    // kernel stack needs more of them to spread interrupt/copy work.
    profile.conns_per_peer = kernel ? 16 : 8;
    double single;
    RpcRig::StressResult stress{};
    {
      RpcRig rig(host_link, profile);
      single = rig.single_rpc_latency_us();
    }
    {
      RpcRig rig(host_link, profile);
      // Kernel TCP needs a longer window: its 200ms min-RTO makes early
      // loss recovery slow, which is part of the story being measured.
      stress = kernel ? rig.stress(concurrency, ms(120), ms(160))
                      : rig.stress(concurrency, ms(25), ms(50));
    }
    t.add_row({std::string("Single 4KB RPC (") + profile.name + ")",
               TextTable::num(single), "1", "-"});
    t.add_row({std::string("stress test (") + profile.name + ")",
               TextTable::num(stress.avg_latency_us),
               TextTable::num(stress.cores),
               TextTable::num(stress.gbps_achieved)});
    (kernel ? kernel_single : luna_single) = single;
    (kernel ? kernel_cores : luna_cores) = stress.cores;
  }
  std::printf("--- %s ---\n%s", label, t.render().c_str());
  std::printf("shape: kernel/luna single-RPC latency ratio = %.1fx "
              "(paper ~3.5-5x); stress consumed-core ratio = %.1fx "
              "(paper ~3-4x)\n\n",
              kernel_single / luna_single, kernel_cores / luna_cores);
}

}  // namespace

int main() {
  bench::print_header("Table 1: FN RPC latency and CPU under load",
                      "Table 1a/1b (kernel TCP vs LUNA)");
  run_variant("(a) 2x25GE, stress to ~50 Gbps", gbps(25), 32);
  run_variant("(b) 2x100GE, stress to ~200 Gbps", gbps(100), 128);
  return 0;
}
