// sim_fuzz: FoundationDB-style simulation fuzzer over the chaos subsystem.
//
// Swarms random (seed, plan, workload) triples across the four stack
// generations (kernel-TCP, LUNA, SOLAR*, SOLAR), runs each under the full
// oracle board (exactly-once, durability/CRC, recovery SLO, conservation,
// and the SOLAR hang oracle whenever the drawn plan is hang-safe), and on
// any violation greedily minimizes the fault schedule and dumps a
// replayable JSON plan plus a Perfetto-loadable trace of the failing run.
//
// Modes:
//   --smoke            100-run seeded sweep (25 seeds x 4 stacks) with
//                      periodic bit-determinism double-runs; exit 0 iff no
//                      violations. CI runs this, time-boxed.
//   --runs N           same sweep with N runs.
//   --plant-bug        validation: disable SOLAR path failover (the
//                      planted bug) and hunt it with stretched plans; exit
//                      0 iff the hang oracle catches it and the minimized
//                      repro still fails deterministically.
//   --replay FILE      re-run a dumped plan (--stack/--seed/--hang-oracle/
//                      --planted-bug select the rest of the triple); exit
//                      0 iff clean.
//
// The harness config other than (stack, seed, plan, workload knobs drawn
// from the seed) is fixed, so a repro file plus the printed command line
// fully determines the failing run.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/harness.h"
#include "chaos/injector.h"
#include "chaos/minimize.h"
#include "ebs/cluster.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "sim/engine.h"

using namespace repro;
using chaos::FaultPlan;
using chaos::HarnessConfig;
using chaos::RunReport;
using ebs::StackKind;

namespace {

constexpr StackKind kStacks[] = {
    StackKind::kKernelTcp,
    StackKind::kLuna,
    StackKind::kSolarStar,
    StackKind::kSolar,
};

std::string stack_name(StackKind s) { return stack::cli_string(s); }

chaos::TopologyShape shape_for(StackKind stack) {
  // One throwaway cluster per stack tells the generator what exists,
  // built from the harness's own declarative scenario.
  HarnessConfig defaults;
  defaults.stack = stack;
  sim::Engine eng;
  ebs::Cluster cluster(eng, ebs::params_from(defaults.scenario()));
  return chaos::Injector(cluster).shape();
}

struct FuzzOptions {
  int runs = 100;
  std::uint64_t seed_base = 1000;
  int determinism_every = 10;  ///< double-run every Nth run
  double max_seconds = 0.0;    ///< 0 = no wall-clock box
  std::string out_dir = ".";
  bool plant_bug = false;
  /// Worker threads for the sweep. Each run's config is a pure function of
  /// its index, results are reported in index order, and minimization runs
  /// serially afterwards — so `--jobs N` finds exactly the set of failures
  /// `--jobs 1` finds, just sooner.
  int jobs = 1;
};

std::string repro_path(const FuzzOptions& opt, const char* tag) {
  return opt.out_dir + "/simfuzz_repro_" + tag + ".json";
}

void dump_repro(const FuzzOptions& opt, const HarnessConfig& cfg,
                const FaultPlan& min_plan, const char* tag) {
  const std::string plan_path = repro_path(opt, tag);
  std::ofstream f(plan_path);
  f << min_plan.to_json() << "\n";
  f.close();

  // Trace of the minimized failing run, Perfetto-loadable.
  obs::Obs obs;
  HarnessConfig traced = cfg;
  traced.plan = min_plan;
  traced.obs = &obs;
  const RunReport r = chaos::run_chaos(traced);
  const std::string trace_path =
      opt.out_dir + "/simfuzz_trace_" + tag + ".json";
  obs::export_chrome_trace(trace_path, obs.tracer());

  std::printf("  repro plan : %s\n", plan_path.c_str());
  std::printf("  trace      : %s (violations in traced run: %zu)\n",
              trace_path.c_str(), r.violations.size());
  std::printf("  replay with: sim_fuzz --replay %s --stack %s --seed %llu%s%s\n",
              plan_path.c_str(), stack_name(cfg.stack).c_str(),
              static_cast<unsigned long long>(cfg.seed),
              cfg.oracle.hang_oracle ? " --hang-oracle" : "",
              cfg.disable_solar_failover ? " --planted-bug" : "");
}

void print_violations(const RunReport& r) {
  constexpr std::size_t kMaxShown = 10;
  for (std::size_t i = 0; i < r.violations.size() && i < kMaxShown; ++i) {
    const chaos::Violation& v = r.violations[i];
    std::printf("  [%s] %s (t=%.3f ms)\n", v.oracle.c_str(), v.detail.c_str(),
                v.at / 1e6);
  }
  if (r.violations.size() > kMaxShown) {
    std::printf("  ... and %zu more violations\n",
                r.violations.size() - kMaxShown);
  }
}

/// The (stack, seed, plan, workload) triple of sweep run `i` — a pure
/// function of the options and index, shared by the serial and parallel
/// paths so they cover identical configs.
HarnessConfig config_for(const FuzzOptions& opt, int i,
                         const chaos::TopologyShape shapes[4]) {
  const int si = i % 4;
  const StackKind stack = kStacks[si];
  const std::uint64_t seed = opt.seed_base + static_cast<std::uint64_t>(i);

  Rng rng(seed * 6364136223846793005ull + 1442695040888963407ull);
  chaos::GeneratorConfig gc;
  gc.window = ms(500);
  gc.min_events = 1;
  gc.max_events = 4;
  const FaultPlan plan = chaos::generate_plan(rng, gc, shapes[si]);

  HarnessConfig cfg;
  cfg.stack = stack;
  cfg.seed = seed;
  cfg.plan = plan;
  cfg.active = ms(600);
  // The workload leg of the triple, drawn from the same stream.
  cfg.read_fraction = 0.2 + 0.15 * static_cast<double>(rng.next_below(4));
  cfg.block_size = 4096u << rng.next_below(3);  // 4K / 8K / 16K
  cfg.poisson_iops = 800.0 + 400.0 * static_cast<double>(rng.next_below(4));
  cfg.oracle.hang_oracle = chaos::hang_oracle_applicable(stack, plan);
  return cfg;
}

/// Minimizes + dumps one failing run (shared by both sweep paths; always
/// called serially).
void handle_failure(const FuzzOptions& opt, int i, const HarnessConfig& cfg,
                    const RunReport& r, bool deterministic) {
  std::printf("[sim_fuzz] FAIL run %d: stack=%s seed=%llu plan=%zu events%s\n",
              i, stack_name(cfg.stack).c_str(),
              static_cast<unsigned long long>(cfg.seed),
              cfg.plan.events.size(),
              deterministic ? "" : " (NON-DETERMINISTIC)");
  print_violations(r);
  if (!r.ok()) {
    const chaos::MinimizeResult min =
        chaos::minimize_plan(cfg.plan, [&cfg](const FaultPlan& candidate) {
          HarnessConfig probe = cfg;
          probe.plan = candidate;
          return !chaos::run_chaos(probe).ok();
        });
    std::printf("  minimized: %zu -> %zu events (%d probes)\n",
                cfg.plan.events.size(), min.plan.events.size(), min.probes);
    char tag[64];
    std::snprintf(tag, sizeof tag, "%s_seed%llu",
                  stack_name(cfg.stack).c_str(),
                  static_cast<unsigned long long>(cfg.seed));
    dump_repro(opt, cfg, min.plan, tag);
  }
}

/// `--jobs N` sweep: workers pull run indices from an atomic counter and
/// buffer their outcomes; every run's config is derived from its index, so
/// the work partition cannot change any result. Reporting, minimization and
/// repro dumps happen serially afterwards, in index order.
int run_sweep_parallel(const FuzzOptions& opt) {
  chaos::TopologyShape shapes[4];
  for (int s = 0; s < 4; ++s) shapes[s] = shape_for(kStacks[s]);

  struct Outcome {
    bool ran = false;
    bool deterministic = true;
    HarnessConfig cfg;
    RunReport report;
  };
  std::vector<Outcome> outcomes(static_cast<std::size_t>(opt.runs));
  std::atomic<int> next{0};
  std::atomic<bool> boxed{false};
  const auto t0 = std::chrono::steady_clock::now();

  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= opt.runs) return;
      if (opt.max_seconds > 0) {
        const double elapsed = std::chrono::duration<double>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
        if (elapsed > opt.max_seconds) {
          boxed.store(true, std::memory_order_relaxed);
          return;
        }
      }
      Outcome& out = outcomes[static_cast<std::size_t>(i)];
      out.cfg = config_for(opt, i, shapes);
      out.report = chaos::run_chaos(out.cfg);
      if (opt.determinism_every > 0 && i % opt.determinism_every == 0) {
        const RunReport again = chaos::run_chaos(out.cfg);
        out.deterministic = again.signature() == out.report.signature();
      }
      out.ran = true;
    }
  };
  std::vector<std::thread> pool;
  for (int j = 0; j < opt.jobs; ++j) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();

  int failures = 0;
  int determinism_checks = 0;
  int completed = 0;
  std::uint64_t total_ios = 0;
  std::uint64_t total_faults = 0;
  std::uint64_t hang_oracle_runs = 0;
  for (int i = 0; i < opt.runs; ++i) {
    const Outcome& out = outcomes[static_cast<std::size_t>(i)];
    if (!out.ran) continue;  // wall-clock box hit before this index
    ++completed;
    total_ios += out.report.ios_completed;
    total_faults += out.report.faults_applied;
    hang_oracle_runs += out.cfg.oracle.hang_oracle ? 1 : 0;
    if (opt.determinism_every > 0 && i % opt.determinism_every == 0) {
      ++determinism_checks;
    }
    if (!out.report.ok() || !out.deterministic) {
      ++failures;
      handle_failure(opt, i, out.cfg, out.report, out.deterministic);
    }
  }
  if (boxed.load()) {
    std::printf("[sim_fuzz] wall-clock box (%.0fs) hit after %d runs\n",
                opt.max_seconds, completed);
  }

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf(
      "[sim_fuzz] %d runs (%d with hang oracle armed) across %d jobs, %llu "
      "I/Os, %llu faults injected, %d determinism double-runs, %d failures, "
      "%.1fs\n",
      completed, static_cast<int>(hang_oracle_runs), opt.jobs,
      static_cast<unsigned long long>(total_ios),
      static_cast<unsigned long long>(total_faults), determinism_checks,
      failures, elapsed);
  return failures == 0 ? 0 : 1;
}

int run_sweep(const FuzzOptions& opt) {
  if (opt.jobs > 1) return run_sweep_parallel(opt);
  chaos::TopologyShape shapes[4];
  for (int s = 0; s < 4; ++s) shapes[s] = shape_for(kStacks[s]);

  const auto t0 = std::chrono::steady_clock::now();
  int failures = 0;
  int determinism_checks = 0;
  int completed = 0;
  std::uint64_t total_ios = 0;
  std::uint64_t total_faults = 0;
  std::uint64_t hang_oracle_runs = 0;

  for (int i = 0; i < opt.runs; ++i) {
    if (opt.max_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (elapsed > opt.max_seconds) {
        std::printf("[sim_fuzz] wall-clock box (%.0fs) hit after %d runs\n",
                    opt.max_seconds, completed);
        break;
      }
    }
    const HarnessConfig cfg = config_for(opt, i, shapes);
    hang_oracle_runs += cfg.oracle.hang_oracle ? 1 : 0;

    const RunReport r = chaos::run_chaos(cfg);
    ++completed;
    total_ios += r.ios_completed;
    total_faults += r.faults_applied;

    bool deterministic = true;
    if (opt.determinism_every > 0 && i % opt.determinism_every == 0) {
      ++determinism_checks;
      const RunReport again = chaos::run_chaos(cfg);
      deterministic = again.signature() == r.signature();
    }

    if (!r.ok() || !deterministic) {
      ++failures;
      handle_failure(opt, i, cfg, r, deterministic);
    } else if (i % 20 == 19) {
      std::printf("[sim_fuzz] %d/%d runs clean...\n", i + 1, opt.runs);
    }
  }

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf(
      "[sim_fuzz] %d runs (%d with hang oracle armed), %llu I/Os, %llu "
      "faults injected, %d determinism double-runs, %d failures, %.1fs\n",
      completed, static_cast<int>(hang_oracle_runs),
      static_cast<unsigned long long>(total_ios),
      static_cast<unsigned long long>(total_faults), determinism_checks,
      failures, elapsed);
  return failures == 0 ? 0 : 1;
}

/// Planted-bug hunt: SOLAR path failover disabled, stretched silent /
/// blackhole faults on switches. The hang oracle (armed — these plans are
/// hang-safe for a *healthy* SOLAR, that is Table 2's claim) must fire,
/// and the minimized repro must fail deterministically.
int run_plant_bug(const FuzzOptions& opt) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::uint64_t seed = opt.seed_base + static_cast<std::uint64_t>(attempt);
    Rng rng(seed * 0x2545F4914F6CDD1Dull + 1);

    FaultPlan plan;
    plan.name = "plant-bug-hunt";
    const int n_events = 1 + static_cast<int>(rng.next_below(2));
    for (int k = 0; k < n_events; ++k) {
      chaos::FaultEvent e;
      e.at = ms(10) + static_cast<TimeNs>(rng.next_below(
                          static_cast<std::uint64_t>(ms(100))));
      e.duration = ms(1500);  // stretched past the 1 s hang threshold
      e.kind = rng.next_below(2) == 0 ? chaos::FaultKind::kDeviceSilent
                                      : chaos::FaultKind::kBlackhole;
      if (e.kind == chaos::FaultKind::kBlackhole) {
        e.magnitude = 0.4 + 0.4 * rng.uniform01();
      }
      static constexpr chaos::TargetKind kTiers[] = {
          chaos::TargetKind::kComputeTor, chaos::TargetKind::kStorageTor,
          chaos::TargetKind::kComputeSpine, chaos::TargetKind::kStorageSpine,
      };
      e.target.kind = kTiers[rng.next_below(4)];
      e.target.index = static_cast<int>(rng.next_below(4));
      plan.events.push_back(e);
    }

    HarnessConfig cfg;
    cfg.stack = StackKind::kSolar;
    cfg.seed = seed;
    cfg.plan = plan;
    cfg.active = ms(1700);
    cfg.oracle.hang_oracle = true;
    cfg.disable_solar_failover = true;

    // A healthy SOLAR must shrug this exact plan off — otherwise the
    // "catch" below would prove nothing about the planted bug.
    HarnessConfig healthy = cfg;
    healthy.disable_solar_failover = false;
    if (!chaos::run_chaos(healthy).ok()) continue;

    const RunReport buggy = chaos::run_chaos(cfg);
    if (buggy.ok()) continue;  // faults missed the pinned paths; redraw

    std::printf("[sim_fuzz] planted bug caught at attempt %d (seed %llu):\n",
                attempt, static_cast<unsigned long long>(seed));
    print_violations(buggy);

    const RunReport again = chaos::run_chaos(cfg);
    if (again.signature() != buggy.signature()) {
      std::printf("[sim_fuzz] ERROR: failing run not bit-reproducible\n");
      return 1;
    }

    const chaos::MinimizeResult min =
        chaos::minimize_plan(plan, [&cfg](const FaultPlan& candidate) {
          HarnessConfig probe = cfg;
          probe.plan = candidate;
          return !chaos::run_chaos(probe).ok();
        });
    HarnessConfig replay = cfg;
    replay.plan = min.plan;
    const RunReport min_a = chaos::run_chaos(replay);
    const RunReport min_b = chaos::run_chaos(replay);
    if (min_a.ok() || min_a.signature() != min_b.signature()) {
      std::printf("[sim_fuzz] ERROR: minimized plan does not fail "
                  "deterministically\n");
      return 1;
    }
    std::printf("  minimized: %zu -> %zu events (%d probes), still fails "
                "deterministically\n",
                plan.events.size(), min.plan.events.size(), min.probes);
    dump_repro(opt, cfg, min.plan, "planted_bug");
    return 0;
  }
  std::printf("[sim_fuzz] ERROR: planted bug never caught in 16 attempts\n");
  return 1;
}

int run_replay(const std::string& file, StackKind stack, std::uint64_t seed,
               bool hang_oracle, bool planted_bug) {
  std::ifstream f(file);
  if (!f) {
    std::fprintf(stderr, "sim_fuzz: cannot open %s\n", file.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << f.rdbuf();
  FaultPlan plan;
  std::string err;
  if (!chaos::plan_from_json(ss.str(), &plan, &err)) {
    std::fprintf(stderr, "sim_fuzz: bad plan %s: %s\n", file.c_str(),
                 err.c_str());
    return 2;
  }
  HarnessConfig cfg;
  cfg.stack = stack;
  cfg.seed = seed;
  cfg.plan = plan;
  cfg.active = planted_bug ? ms(1700) : ms(600);
  cfg.oracle.hang_oracle = hang_oracle;
  cfg.disable_solar_failover = planted_bug;
  const RunReport r = chaos::run_chaos(cfg);
  std::printf("[sim_fuzz] replay %s: stack=%s seed=%llu -> %s (%s)\n",
              file.c_str(), stack_name(stack).c_str(),
              static_cast<unsigned long long>(seed),
              r.ok() ? "CLEAN" : "VIOLATIONS", r.signature().c_str());
  print_violations(r);
  return r.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions opt;
  std::string replay_file;
  StackKind replay_stack = StackKind::kSolar;
  std::uint64_t replay_seed = 1;
  bool replay_hang_oracle = false;
  bool mode_plant = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sim_fuzz: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--smoke") {
      opt.runs = 100;
    } else if (a == "--runs") {
      opt.runs = std::atoi(next());
    } else if (a == "--seed-base") {
      opt.seed_base = std::strtoull(next(), nullptr, 10);
    } else if (a == "--max-seconds") {
      opt.max_seconds = std::atof(next());
    } else if (a == "--out") {
      opt.out_dir = next();
    } else if (a == "--jobs") {
      opt.jobs = std::atoi(next());
      if (opt.jobs < 1) opt.jobs = 1;
    } else if (a == "--plant-bug") {
      mode_plant = true;
    } else if (a == "--replay") {
      replay_file = next();
    } else if (a == "--stack") {
      if (!ebs::stack_from_string(next(), &replay_stack)) {
        std::fprintf(stderr, "sim_fuzz: unknown stack\n");
        return 2;
      }
    } else if (a == "--seed") {
      replay_seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--hang-oracle") {
      replay_hang_oracle = true;
    } else if (a == "--planted-bug") {
      opt.plant_bug = true;  // replay against the planted-bug build
    } else {
      std::fprintf(stderr,
                   "usage: sim_fuzz [--smoke | --runs N] [--jobs N]\n"
                   "                [--seed-base S]\n"
                   "                [--max-seconds S] [--out DIR] [--plant-bug]\n"
                   "                [--replay FILE --stack NAME --seed N\n"
                   "                 [--hang-oracle] [--planted-bug]]\n");
      return 2;
    }
  }

  if (!replay_file.empty()) {
    return run_replay(replay_file, replay_stack, replay_seed,
                      replay_hang_oracle, opt.plant_bug);
  }
  if (mode_plant) return run_plant_bug(opt);
  return run_sweep(opt);
}
