// Machine-readable run summaries for the experiment harnesses.
//
// Every fig*/table* binary prints a human table and, through RunSummary,
// mirrors the same numbers to BENCH_<name>.json so CI and the driver's
// benchmark gate can diff runs without scraping stdout. The schema is
// deliberately flat: {bench, paper, rows: [{column: value, ...}, ...]}.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "obs/json.h"

namespace repro::bench {

class RunSummary {
 public:
  using Value = std::variant<std::int64_t, std::uint64_t, double,
                             std::string, bool>;

  RunSummary(std::string name, std::string paper_ref)
      : name_(std::move(name)), paper_(std::move(paper_ref)) {}

  /// Starts a new result row; subsequent set() calls land in it.
  RunSummary& row() {
    rows_.emplace_back();
    return *this;
  }

  RunSummary& set(const std::string& key, Value v) {
    rows_.back().emplace_back(key, std::move(v));
    return *this;
  }

  std::size_t rows_count() const { return rows_.size(); }

  /// Writes BENCH_<name>.json in the working directory (where CI collects
  /// artifacts from). Returns false on I/O failure — benches report it but
  /// do not fail the run over a summary file.
  bool write() const { return write_to("BENCH_" + name_ + ".json"); }

  bool write_to(const std::string& path) const {
    std::ofstream os(path, std::ios::trunc);
    if (!os) return false;
    obs::JsonWriter w(os);
    w.begin_object();
    w.key("bench").value(name_);
    w.key("paper").value(paper_);
    w.key("rows").begin_array();
    for (const auto& row : rows_) {
      w.begin_object();
      for (const auto& [k, v] : row) {
        w.key(k);
        std::visit([&w](const auto& x) { w.value(x); }, v);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    const bool ok = static_cast<bool>(os);
    if (ok) std::printf("wrote %s\n", path.c_str());
    return ok;
  }

 private:
  std::string name_;
  std::string paper_;
  std::vector<std::vector<std::pair<std::string, Value>>> rows_;
};

}  // namespace repro::bench
