// Figure 14: fio Read with 32 I/O depth under 1-3 DPU CPU cores:
//   (a) 64KB throughput — LUNA/RDMA/SOLAR* pinned under the internal-PCIe
//       goodput ceiling, SOLAR at line rate;
//   (b) 4KB IOPS — SOLAR +46% per core; ~150K IOPS per core (§4.8).
//
// All four configurations run on ALI-DPU (bare-metal hosting): software
// stacks use the DPU's six-core budget restricted to 1-3 cores and pay the
// internal-PCIe crossings (Fig. 10); SOLAR's offloaded data path does not.
#include <cstdio>

#include "bench_json.h"
#include "bench_util.h"

using namespace repro;
using ebs::StackKind;

namespace {

struct Point {
  double mbps = 0;
  double kiops = 0;
};

Point run_case(StackKind stack, int cores, std::uint32_t block_size) {
  auto params = bench::default_params(stack, /*compute=*/1, /*storage=*/16);
  params.on_dpu = true;
  params.dpu.cpu_cores = cores;
  params.host_cpu_cores = cores;  // unused when on_dpu, set for clarity
  auto c = bench::make_cluster(params);

  workload::FioConfig cfg;
  cfg.block_size = block_size;
  cfg.iodepth = 32;
  cfg.read_fraction = 1.0;
  auto res = bench::run_fio(*&c, cfg, /*warmup=*/ms(15), /*measure=*/ms(40));
  Point p;
  p.mbps = res.metrics.throughput_mbps(res.measured_ns);
  p.kiops = res.metrics.iops(res.measured_ns) / 1e3;
  return p;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 14: fio Read, 32 depth, 1-3 cores (ALI-DPU hosting)",
      "Fig. 14a (64KB MB/s; PCIe ceiling) / 14b (4KB KIOPS)");

  const StackKind stacks[] = {StackKind::kLuna, StackKind::kRdma,
                              StackKind::kSolarStar, StackKind::kSolar};
  bench::RunSummary summary("fig14",
                            "Fig. 14a (64KB MB/s) / 14b (4KB KIOPS)");

  std::printf("--- (a) throughput of 64KB I/O (MB/s) ---\n");
  TextTable ta({"stack", "1 core", "2 cores", "3 cores"});
  double solar1 = 0, luna1 = 0;
  for (StackKind s : stacks) {
    std::vector<std::string> row{ebs::to_string(s)};
    for (int cores = 1; cores <= 3; ++cores) {
      const Point p = run_case(s, cores, 65536);
      row.push_back(TextTable::num(p.mbps, 0));
      summary.row()
          .set("panel", "a")
          .set("stack", ebs::to_string(s))
          .set("cores", static_cast<std::int64_t>(cores))
          .set("mbps", p.mbps);
      if (cores == 1 && s == StackKind::kSolar) solar1 = p.mbps;
      if (cores == 1 && s == StackKind::kLuna) luna1 = p.mbps;
    }
    ta.add_row(std::move(row));
  }
  std::printf("%s", ta.render().c_str());
  std::printf("internal-PCIe goodput ceiling (two crossings): ~%.0f MB/s; "
              "2x25GE line rate: ~6250 MB/s\n",
              gbps(38) / 8 / 1e6 / 2);
  std::printf("shape: SOLAR 1-core throughput vs LUNA: +%.0f%% "
              "(paper: +78%%)\n\n",
              100.0 * (solar1 / luna1 - 1.0));

  std::printf("--- (b) IOPS of 4KB I/O (K) ---\n");
  TextTable tb({"stack", "1 core", "2 cores", "3 cores"});
  double solar_k1 = 0, luna_k1 = 0;
  for (StackKind s : stacks) {
    std::vector<std::string> row{ebs::to_string(s)};
    for (int cores = 1; cores <= 3; ++cores) {
      const Point p = run_case(s, cores, 4096);
      row.push_back(TextTable::num(p.kiops, 0));
      summary.row()
          .set("panel", "b")
          .set("stack", ebs::to_string(s))
          .set("cores", static_cast<std::int64_t>(cores))
          .set("kiops", p.kiops);
      if (cores == 1 && s == StackKind::kSolar) solar_k1 = p.kiops;
      if (cores == 1 && s == StackKind::kLuna) luna_k1 = p.kiops;
    }
    tb.add_row(std::move(row));
  }
  std::printf("%s", tb.render().c_str());
  std::printf("shape: SOLAR 1-core IOPS vs LUNA (the incumbent): +%.0f%% "
              "(paper: +46%%); ~150K IOPS/core without queueing (§4.8)\n",
              100.0 * (solar_k1 / luna_k1 - 1.0));
  summary.write();
  return 0;
}
