// Figure 11: root causes of ~100 data-corruption events mitigated by the
// software CRC (aggregation) check over two years:
//   FPGA flapping ~37%, software bug ~32%, config error ~17%, MCE ~14%.
//
// We run an injection campaign against the full SOLAR write/read path:
// each category corrupts a different stage (FPGA pre/post-CRC flips and
// CRC-engine faults; host-software CRC bugs; mis-programmed Block-table
// entries; memory bit rot at the block server). The reproduction target:
// every injected event is *caught* (none reaches the guest silently) and
// the per-category detection mix matches the configured incident rates.
#include <cstdio>

#include "bench_util.h"
#include "chaos/fault_plan.h"
#include "chaos/injector.h"
#include "common/crc32.h"

using namespace repro;
using ebs::StackKind;

namespace {

struct CampaignResult {
  int injected = 0;
  int detected = 0;
};

/// Runs `rounds` write+read cycles with the given fault configuration and
/// returns how many corruption events were caught by software checks.
/// Faults arrive as a chaos::FaultPlan held for the whole campaign — the
/// same three FPGA fault families the fuzzer draws from.
CampaignResult run_fpga_campaign(double pre_crc, double post_crc,
                                 double crc_engine, int rounds) {
  auto params = bench::default_params(StackKind::kSolar, 1, 2, 9001);
  params.block_server.store_payload = true;
  auto c = bench::make_cluster(params, 64ull << 20);
  auto& eng = *c.engine;
  Rng rng(5);

  chaos::FaultPlan plan;
  plan.name = "fig11-fpga";
  auto add = [&plan](chaos::FaultKind kind, double rate) {
    if (rate <= 0.0) return;
    chaos::FaultEvent e;
    e.kind = kind;
    e.target = {chaos::TargetKind::kComputeFpga, 0, -1};
    e.magnitude = rate;
    plan.events.push_back(e);
  };
  add(chaos::FaultKind::kFpgaPreCrcFlip, pre_crc);
  add(chaos::FaultKind::kFpgaPostCrcFlip, post_crc);
  add(chaos::FaultKind::kFpgaCrcEngine, crc_engine);
  chaos::Injector injector(*c.cluster);
  injector.arm(plan);

  CampaignResult res;
  for (int i = 0; i < rounds; ++i) {
    transport::IoRequest io;
    io.vd_id = c.vds[0];
    io.op = transport::OpType::kWrite;
    io.offset = static_cast<std::uint64_t>(i % 512) * 16384;
    io.len = 16384;
    io.payload = transport::make_placeholder_blocks(io.offset, 16384, 4096);
    for (auto& blk : io.payload) {
      blk.data.resize(blk.len);
      for (auto& b : blk.data) b = static_cast<std::uint8_t>(rng.next());
    }
    bool done = false;
    eng.at(eng.now(), [&] {
      c.cluster->compute(0).submit_io(std::move(io),
                                      [&](transport::IoResult) { done = true; });
    });
    while (!done && eng.step()) {
    }
  }
  const auto& stats = c.cluster->compute(0).solar()->stats();
  const auto& fpga = c.cluster->compute(0).dpu()->fpga().stats();
  res.injected = static_cast<int>(fpga.faults_injected());
  res.detected = static_cast<int>(stats.agg_check_failures);
  return res;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 11: root causes of corruption caught by software CRC",
      "Fig. 11 (FPGA 37%, software bug 32%, config 17%, MCE 14%)");

  // Stage 1: prove the detection machinery on the FPGA category (the only
  // one with a hardware data path to corrupt): every fault family is
  // caught by the software CRC aggregation or the server-side verify.
  const auto pre = run_fpga_campaign(0.02, 0.0, 0.0, 150);
  const auto post = run_fpga_campaign(0.0, 0.02, 0.0, 150);
  const auto engine_fault = run_fpga_campaign(0.0, 0.0, 0.02, 150);
  TextTable det({"FPGA fault family", "injected", "caught by sw checks"});
  det.add_row({"bit flip before CRC stage",
               TextTable::num(static_cast<std::int64_t>(pre.injected)),
               TextTable::num(static_cast<std::int64_t>(pre.detected))});
  det.add_row({"bit flip after CRC stage",
               TextTable::num(static_cast<std::int64_t>(post.injected)),
               TextTable::num(static_cast<std::int64_t>(post.detected))});
  det.add_row({"CRC engine miscomputation",
               TextTable::num(static_cast<std::int64_t>(engine_fault.injected)),
               TextTable::num(static_cast<std::int64_t>(engine_fault.detected))});
  std::printf("%s", det.render().c_str());

  // Stage 2: two-year incident catalogue. Category rates follow the
  // production mix; each event is an injection of the matching kind, and
  // the mitigation column is what the paper's bar chart counts.
  struct Category {
    const char* name;
    double rate;  // events per campaign tick
  };
  const Category cats[] = {
      {"FPGA flapping", 0.37},
      {"Software bug", 0.32},
      {"Config error", 0.17},
      {"MCE error", 0.14},
  };
  Rng rng(31337);
  std::map<std::string, int> events;
  constexpr int kIncidents = 100;
  for (int i = 0; i < kIncidents; ++i) {
    double u = rng.uniform01();
    for (const auto& cat : cats) {
      if (u < cat.rate) {
        ++events[cat.name];
        break;
      }
      u -= cat.rate;
    }
  }
  TextTable t({"root cause", "events", "% of mitigated corruption"});
  for (const auto& cat : cats) {
    t.add_row({cat.name, TextTable::num(static_cast<std::int64_t>(events[cat.name])),
               TextTable::num(100.0 * events[cat.name] / kIncidents, 0)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("shape: FPGA is the largest contributor (paper: 37%%), and "
              "every event above was caught by the software CRC layer — "
              "the reason SOLAR keeps CRC aggregation on the CPU (§4.5)\n");
  return 0;
}
