// Rack-fault bench: placement spread vs blast radius, and the
// exposure-ordered rebuild drain.
//
// Phase 1 (layout): for each placement policy (none/legacy baseline,
// rack-aware, exposure) build an identical EC fleet, stripe real data, and
// measure the per-stripe rack concentration — the histogram of "fragments
// of one stripe in one rack" — plus the rack-domain durability oracle's
// verdict for every rack (audit_ec_rack_durability: would a whole-rack
// fail-stop lose committed data?). The spread policies must bound the
// concentration at ceil((k+m)/racks) and keep every rack's audit green;
// the legacy rotated layout concentrates up to servers_per_rack fragments
// and loses data to a single rack.
//
// Phase 2 (drain): under the exposure policy, fail-stop two fragment
// holders (adjacent schedule slots — a correlated dual failure across
// racks) and record the MaintenanceAgent's rebuild log: the at-pop
// exposure of every rebuilt segment, i.e. the exposure-drain curve. The
// exposure-ordered pump must drain most-exposed segments first (the curve
// is non-increasing); the same outage under the FIFO (rack-aware) pump is
// reported for contrast.
//
// Asserts: spread bound respected, legacy concentration exceeds it, rack
// audits green under spread / red under legacy, drain curve monotone and
// complete, and bit-determinism (the exposure drain re-run must
// fingerprint equal). Writes BENCH_placement.json. --smoke shrinks for CI.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "chaos/ec_oracle.h"
#include "common/crc32.h"
#include "ebs/cluster.h"
#include "ec/maintenance.h"
#include "placement/policy.h"
#include "sa/segment_table.h"

namespace {

using namespace repro;
using transport::IoRequest;
using transport::IoResult;
using transport::OpType;
using transport::StorageStatus;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h * 0xFF51AFD7ED558CCDull;
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + 1;
  for (auto& b : v) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  return v;
}

bool write_cell(sim::Engine& eng, ebs::Cluster& cluster, std::uint64_t vd,
                std::uint64_t offset) {
  IoRequest io;
  io.vd_id = vd;
  io.op = OpType::kWrite;
  io.offset = offset;
  io.len = 4096;
  io.payload = transport::make_placeholder_blocks(offset, io.len, 4096);
  for (auto& blk : io.payload) {
    blk.data = pattern(blk.len, blk.lba + 1);
    blk.crc = crc32_raw(blk.data);
  }
  bool ok = false;
  bool done = false;
  eng.at(eng.now(), [&] {
    cluster.compute(0).submit_io(std::move(io), [&](IoResult r) {
      ok = r.status == StorageStatus::kOk;
      done = true;
    });
  });
  while (!done && eng.step()) {
  }
  return done && ok;
}

struct FleetShape {
  int storage = 6;
  int per_rack = 2;
  int k = 2;
  int m = 1;
  std::uint64_t vd_bytes = 32ull << 20;
};

ebs::ClusterParams fleet_params(const FleetShape& shape,
                                const char* policy) {
  ebs::ClusterParams p;
  p.topo.compute_servers = 1;
  p.topo.storage_servers = shape.storage;
  p.topo.servers_per_rack = shape.per_rack;
  p.stack = ebs::StackKind::kSolar;
  p.seed = 2028;
  p.block_server.store_payload = true;
  p.ec.enabled = true;
  p.ec.k = shape.k;
  p.ec.m = shape.m;
  if (policy != nullptr) {
    p.placement.enabled = true;
    if (!placement::policy_from_string(policy, &p.placement.policy)) {
      std::fprintf(stderr, "unknown policy: %s\n", policy);
      std::exit(2);
    }
  }
  return p;
}

// ---------------------------------------------------------------------------
// Phase 1: layout histogram + rack-domain oracle.

struct LayoutResult {
  std::string policy;
  std::uint64_t stripes = 0;
  int max_rack_fragments = 0;       ///< worst per-stripe rack concentration
  std::vector<std::uint64_t> hist;  ///< hist[c] = (stripe, rack) pairs with c
  int loss_racks = 0;               ///< racks whose fail-stop loses data
};

LayoutResult run_layout(const FleetShape& shape, const char* policy,
                        const char* label) {
  sim::Engine eng;
  ebs::Cluster cluster(eng, fleet_params(shape, policy));
  const std::uint64_t vd = cluster.create_vd(shape.vd_bytes);

  // Commit row 0 of every data segment: every stripe row carries k real
  // cells, so the rack oracle audits genuine quorum loss, not
  // absent-as-zero rescues.
  const std::uint64_t data_segs =
      shape.vd_bytes / sa::SegmentTable::kSegmentBytes;
  for (std::uint64_t seg = 0; seg < data_segs; ++seg) {
    if (!write_cell(eng, cluster, vd,
                    seg * sa::SegmentTable::kSegmentBytes)) {
      std::fprintf(stderr, "seed write failed (policy %s, seg %llu)\n",
                   label, static_cast<unsigned long long>(seg));
      std::exit(1);
    }
  }

  LayoutResult r;
  r.policy = label;
  const auto info = cluster.segments().ec_info(vd);
  if (!info) {
    std::fprintf(stderr, "vd %llu has no EC info\n",
                 static_cast<unsigned long long>(vd));
    std::exit(1);
  }
  const placement::ClusterView& view = cluster.placement_view();
  const int racks = view.num_racks();
  r.hist.assign(static_cast<std::size_t>(shape.k + shape.m) + 1, 0);
  std::vector<sa::SegmentLocation> frags;
  std::vector<int> per_rack(static_cast<std::size_t>(racks), 0);
  for (std::uint32_t s = 0; s < info->num_stripes; ++s) {
    cluster.segments().ec_fragments(vd, s, &frags);
    std::fill(per_rack.begin(), per_rack.end(), 0);
    for (const auto& loc : frags) {
      if (loc.block_server == 0) continue;
      const int rack = view.rack_of(loc.block_server);
      if (rack >= 0) ++per_rack[static_cast<std::size_t>(rack)];
    }
    for (const int c : per_rack) {
      ++r.hist[static_cast<std::size_t>(c)];
      r.max_rack_fragments = std::max(r.max_rack_fragments, c);
    }
    ++r.stripes;
  }
  for (int rack = 0; rack < racks; ++rack) {
    if (!chaos::audit_ec_rack_durability(cluster, rack, eng.now()).empty()) {
      ++r.loss_racks;
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Phase 2: exposure drain curve.

struct DrainResult {
  std::string policy;
  std::vector<ec::MaintenanceAgent::RebuildRecord> log;
  bool drained = false;
  bool monotone = true;  ///< at-pop exposure never increases
  int inversions = 0;    ///< records whose exposure exceeds the previous
  std::uint64_t fingerprint = 0;
};

DrainResult run_drain(const FleetShape& shape, const char* policy) {
  sim::Engine eng;
  ebs::Cluster cluster(eng, fleet_params(shape, policy));
  const std::uint64_t vd = cluster.create_vd(shape.vd_bytes);
  const auto pool = cluster.segments().stripe_servers(vd);

  const std::uint64_t stripes =
      shape.vd_bytes / sa::SegmentTable::kSegmentBytes /
      static_cast<std::uint64_t>(shape.k);
  for (std::uint64_t g = 0; g < stripes; ++g) {
    if (!write_cell(eng, cluster, vd,
                    g * static_cast<std::uint64_t>(shape.k) *
                        sa::SegmentTable::kSegmentBytes)) {
      std::fprintf(stderr, "drain seed write failed (stripe %llu)\n",
                   static_cast<unsigned long long>(g));
      std::exit(1);
    }
  }

  // Correlated dual failure on adjacent schedule slots (two racks): every
  // doubly-lost fragment pair stays rebuildable in either order, so the
  // drain runs to completion and the curve is about ordering, not stalls.
  const net::IpAddr a = pool[0];
  const net::IpAddr b = pool[1];
  for (int i = 0; i < cluster.num_storage(); ++i) {
    const net::IpAddr ip = cluster.storage(i).nic().ip();
    if (ip == a || ip == b) {
      cluster.network().fail_device_stop(cluster.storage(i).nic());
    }
  }
  cluster.compute(0).ec()->mark_server(a, false);
  cluster.compute(0).ec()->mark_server(b, false);
  ec::MaintenanceAgent* agent = cluster.compute(0).maintenance();
  cluster.placement_view().set_health(b, false);
  agent->force_server_down(a);
  agent->force_server_down(b);

  const TimeNs deadline = eng.now() + seconds(30);
  while (!agent->idle() && eng.now() < deadline) {
    eng.run_until(eng.now() + ms(50));
  }

  DrainResult r;
  r.policy = policy;
  r.log = agent->rebuild_log();
  r.drained = agent->idle() && agent->stalled_segments() == 0;
  for (std::size_t i = 1; i < r.log.size(); ++i) {
    if (r.log[i].exposure > r.log[i - 1].exposure) {
      r.monotone = false;
      ++r.inversions;
    }
  }
  std::uint64_t h = mix(eng.executed(), static_cast<std::uint64_t>(eng.now()));
  for (const auto& rec : r.log) {
    h = mix(h, rec.vd);
    h = mix(h, rec.seg);
    h = mix(h, static_cast<std::uint64_t>(rec.exposure));
  }
  r.fingerprint = h;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }

  // Layout fleet: ceil((k+m)/racks) = 1, so the spread policies survive
  // any whole-rack fail-stop while the rotated layout packs m+1 fragments
  // into one rack. The full shape widens the pod and the code.
  FleetShape layout_shape;
  if (!smoke) {
    layout_shape.storage = 12;
    layout_shape.per_rack = 4;
    layout_shape.k = 4;
    layout_shape.m = 2;
    layout_shape.vd_bytes = 64ull << 20;
  }
  // Drain fleet: m = 2 so a dual failure is decodable and doubly-exposed
  // stripes exist.
  FleetShape drain_shape;
  drain_shape.k = 2;
  drain_shape.m = 2;
  drain_shape.vd_bytes = smoke ? (64ull << 20) : (128ull << 20);

  const int racks = layout_shape.storage / layout_shape.per_rack;
  const int bound =
      (layout_shape.k + layout_shape.m + racks - 1) / racks;

  bench::RunSummary summary(
      "placement", "rack-aware spread & exposure-driven rebuild (solar)");
  bool ok = true;

  std::printf("%-12s %8s %10s %6s %10s\n", "policy", "stripes", "max/rack",
              "bound", "loss_racks");
  struct Arm {
    const char* policy;  ///< null = placement subsystem off
    const char* label;
    bool spread;
  };
  const Arm arms[] = {{nullptr, "legacy", false},
                      {"rack-aware", "rack-aware", true},
                      {"exposure", "exposure", true}};
  for (const Arm& arm : arms) {
    const LayoutResult r = run_layout(layout_shape, arm.policy, arm.label);
    std::printf("%-12s %8llu %10d %6d %10d\n", r.policy.c_str(),
                static_cast<unsigned long long>(r.stripes),
                r.max_rack_fragments, bound, r.loss_racks);
    auto& row = summary.row()
                    .set("kind", std::string("layout"))
                    .set("policy", r.policy)
                    .set("stripes", r.stripes)
                    .set("max_rack_fragments",
                         static_cast<std::int64_t>(r.max_rack_fragments))
                    .set("spread_bound", static_cast<std::int64_t>(bound))
                    .set("loss_racks",
                         static_cast<std::int64_t>(r.loss_racks));
    for (std::size_t c = 0; c < r.hist.size(); ++c) {
      row.set("rack_frag_" + std::to_string(c), r.hist[c]);
    }
    if (arm.spread) {
      if (r.max_rack_fragments > bound) {
        std::fprintf(stderr,
                     "SPREAD BOUND VIOLATED: %s packs %d fragments into one "
                     "rack (bound %d)\n",
                     r.policy.c_str(), r.max_rack_fragments, bound);
        ok = false;
      }
      if (r.loss_racks != 0) {
        std::fprintf(stderr,
                     "RACK FAULT NOT SURVIVED: %s loses data to %d rack "
                     "fail-stop(s)\n",
                     r.policy.c_str(), r.loss_racks);
        ok = false;
      }
    } else {
      if (r.max_rack_fragments <= bound) {
        std::fprintf(stderr,
                     "BASELINE NOT CONCENTRATED: legacy max %d <= bound %d "
                     "(the comparison is vacuous)\n",
                     r.max_rack_fragments, bound);
        ok = false;
      }
      if (r.loss_racks == 0) {
        std::fprintf(stderr,
                     "BASELINE SURVIVED: legacy lost no rack (expected "
                     "whole-rack data loss)\n");
        ok = false;
      }
    }
  }

  // Exposure-ordered drain vs the FIFO pump, same outage.
  const DrainResult fifo = run_drain(drain_shape, "rack-aware");
  const DrainResult expo = run_drain(drain_shape, "exposure");
  std::printf("\n%-12s %8s %10s %10s %12s %18s\n", "drain", "records",
              "monotone", "inversions", "drained", "fingerprint");
  for (const DrainResult* d : {&fifo, &expo}) {
    std::printf("%-12s %8zu %10s %10d %12s   %016llx\n", d->policy.c_str(),
                d->log.size(), d->monotone ? "yes" : "no", d->inversions,
                d->drained ? "yes" : "no",
                static_cast<unsigned long long>(d->fingerprint));
    summary.row()
        .set("kind", std::string("drain_summary"))
        .set("policy", d->policy)
        .set("records", static_cast<std::uint64_t>(d->log.size()))
        .set("monotone", d->monotone)
        .set("inversions", static_cast<std::int64_t>(d->inversions))
        .set("drained", d->drained)
        .set("fingerprint", d->fingerprint);
  }
  // The curve itself: one row per rebuilt segment, in drain order.
  for (std::size_t i = 0; i < expo.log.size(); ++i) {
    summary.row()
        .set("kind", std::string("drain_curve"))
        .set("seq", static_cast<std::uint64_t>(i))
        .set("seg", expo.log[i].seg)
        .set("exposure", static_cast<std::int64_t>(expo.log[i].exposure));
  }

  if (!expo.drained || !fifo.drained) {
    std::fprintf(stderr, "DRAIN INCOMPLETE: fifo=%d exposure=%d\n",
                 fifo.drained, expo.drained);
    ok = false;
  }
  if (!expo.monotone) {
    std::fprintf(stderr,
                 "DRAIN ORDER VIOLATION: exposure-ordered pump recorded %d "
                 "exposure inversions\n",
                 expo.inversions);
    ok = false;
  }
  if (expo.log.size() != fifo.log.size()) {
    std::fprintf(stderr, "DRAIN COVERAGE MISMATCH: %zu vs %zu records\n",
                 expo.log.size(), fifo.log.size());
    ok = false;
  }
  if (expo.log.empty() ||
      std::none_of(expo.log.begin(), expo.log.end(),
                   [](const auto& rec) { return rec.exposure >= 2; })) {
    std::fprintf(stderr,
                 "DRAIN CURVE FLAT: no doubly-exposed segment was rebuilt\n");
    ok = false;
  }
  // Bit-determinism: the exposure arm re-run must fingerprint equal.
  const DrainResult again = run_drain(drain_shape, "exposure");
  if (again.fingerprint != expo.fingerprint) {
    std::fprintf(stderr, "DETERMINISM VIOLATION: %016llx != %016llx\n",
                 static_cast<unsigned long long>(again.fingerprint),
                 static_cast<unsigned long long>(expo.fingerprint));
    ok = false;
  }

  if (!summary.write()) {
    std::fprintf(stderr, "warning: could not write BENCH_placement.json\n");
  }
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
