// Figure 5: CDF of I/O and FN RPC sizes ("typical sizes are 4K, 16K and
// 64K bytes"; ~40% of RPCs up to 4K; nothing above 128K).
//
// The distributions are workload *inputs* in the paper (production
// monitoring); here the calibrated samplers regenerate the same CDF and a
// Monte-Carlo run confirms sampling matches the analytic curve.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "workload/size_dist.h"

using namespace repro;

int main() {
  bench::print_header("Figure 5: distribution of I/O and FN RPC sizes",
                      "Fig. 5 (SIGCOMM'22), steps at 4K/16K/64K, <=128K");

  auto io = workload::SizeDist::io_sizes();
  auto rpc = workload::SizeDist::rpc_sizes();

  // Monte-Carlo sampling (1M draws) against the analytic CDF.
  Rng rng(1);
  constexpr int kSamples = 1'000'000;
  std::map<std::uint32_t, int> io_counts;
  for (int i = 0; i < kSamples; ++i) ++io_counts[io.sample(rng)];

  TextTable t({"size", "IO CDF %", "IO sampled %", "RPC CDF %"});
  double cum_sampled = 0;
  for (const auto& p : io.points()) {
    cum_sampled += 100.0 * io_counts[p.bytes] / kSamples;
    char label[16];
    std::snprintf(label, sizeof(label), "%uK", p.bytes / 1024);
    t.add_row({label, TextTable::num(100.0 * io.cdf(p.bytes)),
               TextTable::num(cum_sampled),
               TextTable::num(100.0 * rpc.cdf(p.bytes))});
  }
  std::printf("%s", t.render().c_str());
  std::printf("mean I/O size: %.0f bytes; write fraction: %.0f%% "
              "(writes are %.1fx reads)\n",
              io.mean(), 100.0 * workload::kWriteFraction,
              workload::kWriteFraction / (1.0 - workload::kWriteFraction));
  std::printf("paper anchors: ~40%% of RPCs <= 4K; all FN RPCs <= 128K\n");
  return 0;
}
