// Overload bench: goodput-under-SLO with early rejection ON vs OFF.
//
// Drives a SOLAR fleet far past saturation (>= 10x offered vs sustainable)
// under two built-in scenarios — a diurnal spike (the paper's Fig. 4 curve
// compressed and scaled x10) and a noisy neighbor (a guaranteed tenant
// sharing every node with a best-effort tenant flooding it) — and measures
// goodput-under-SLO: completions that returned kOk within their tenant's
// p99 target, per second. Both arms see byte-identical offered load; the
// only difference is `qos.early_reject`. The bench asserts
//   * ON achieves strictly higher goodput-under-SLO than OFF, and
//   * every (scenario, arm) run is bit-identical across --threads,
// then writes BENCH_overload.json.
//
// --scenario <file> replays a ScenarioSpec JSON instead of the built-in
// fleet; --trace <file> replays a jsonl trace (Mooncake format) instead of
// the synthesized diurnal curve. --smoke shrinks everything for CI.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "ebs/scenario.h"
#include "workload/fio.h"
#include "workload/trace.h"

namespace {

using namespace repro;
using transport::IoCompleteFn;
using transport::IoRequest;
using transport::IoResult;

struct Options {
  bool smoke = false;
  std::vector<int> threads = {1, 2, 8};
  std::string scenario_file;
  std::string trace_file;
};

enum class Load { kTrace, kNoisyNeighbor };

struct RunResult {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t slo_ok = 0;
  std::uint64_t slo_violated = 0;
  std::uint64_t executed = 0;
  TimeNs end_time = 0;
  std::uint64_t fingerprint = 0;
  double goodput_per_sec = 0.0;
};

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  return h * 0xFF51AFD7ED558CCDull;
}

/// The built-in overloaded SOLAR fleet. Capacity is deliberately small
/// (one DPU core, fat per-RPC cost) so 10x saturation stays cheap to
/// simulate; per node, VD 2i is the guaranteed tenant and 2i+1 best-effort.
ebs::ScenarioSpec base_spec(bool smoke) {
  ebs::ScenarioSpec spec;
  spec.name = "overload";
  spec.compute_nodes = smoke ? 2 : 4;
  spec.storage_nodes = smoke ? 2 : 4;
  spec.servers_per_rack = smoke ? 1 : 2;
  spec.spines_per_pod = 2;
  spec.core_switches = 2;
  spec.shards = 4;
  spec.stack = ebs::StackKind::kSolar;
  spec.seed = 42;
  for (int i = 0; i < spec.compute_nodes; ++i) {
    ebs::VdSpec guaranteed;
    guaranteed.size_bytes = 256ull << 20;
    guaranteed.has_slo = true;
    guaranteed.slo.target_p99 = ms(2);
    guaranteed.slo.guaranteed_iops = 2500.0;
    guaranteed.slo.cls = qos::SloClass::kGuaranteed;
    spec.vds.push_back(guaranteed);
    ebs::VdSpec best_effort;
    best_effort.size_bytes = 256ull << 20;
    best_effort.has_slo = true;
    best_effort.slo.target_p99 = ms(4);
    best_effort.slo.cls = qos::SloClass::kBestEffort;
    spec.vds.push_back(best_effort);
  }
  spec.qos.enabled = true;
  spec.qos.sched_enabled = true;
  // Shed *early*: admitted I/Os should land safely inside their target,
  // not at its edge — under deep overload an edge admit is a violation.
  spec.qos.headroom = 0.8;
  return spec;
}

RunResult run_arm(const ebs::ScenarioSpec& base, Load load,
                  const std::vector<workload::TraceRecord>& trace,
                  TimeNs active, int threads, bool early_reject) {
  ebs::ScenarioSpec spec = base;
  spec.threads = threads;
  spec.qos.enabled = true;
  spec.qos.early_reject = early_reject;
  ebs::ClusterParams p = ebs::params_from(spec);
  // Throttle node capacity: a single fat-cost DPU core keeps "10x
  // saturation" simulable in seconds (identical in both arms).
  p.dpu.cpu_cores = 1;
  p.solar.cpu_per_rpc = us(100);
  ebs::Scenario s;
  if (spec.shards > 1) {
    s.sharded = std::make_unique<sim::ShardedEngine>(
        spec.shards, threads > 0 ? threads : 1);
    s.cluster = std::make_unique<ebs::Cluster>(*s.sharded, std::move(p));
  } else {
    s.engine = std::make_unique<sim::Engine>();
    s.cluster = std::make_unique<ebs::Cluster>(*s.engine, std::move(p));
  }
  if (spec.vds.empty()) {
    for (int i = 0; i < s.cluster->num_compute(); ++i) {
      s.vds.push_back(s.cluster->create_vd(spec.vd_size_bytes));
    }
  }
  for (const ebs::VdSpec& vd : spec.vds) {
    const std::uint64_t id = s.cluster->create_vd(vd.size_bytes);
    if (vd.has_qos) s.cluster->set_qos(id, vd.qos);
    if (vd.has_slo) s.cluster->set_slo(id, vd.slo);
    s.vds.push_back(id);
  }
  ebs::Cluster& cluster = *s.cluster;

  const int ncompute = cluster.num_compute();
  struct NodeLoad {
    std::unique_ptr<workload::TraceReplay> replay;
    std::unique_ptr<workload::PoissonLoad> guaranteed;
    std::unique_ptr<workload::PoissonLoad> best_effort;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
  };
  std::vector<NodeLoad> loads(static_cast<std::size_t>(ncompute));

  Rng rng(777);
  for (int i = 0; i < ncompute; ++i) {
    NodeLoad& nl = loads[static_cast<std::size_t>(i)];
    // The node's VD slice: a contiguous block, so the spec's per-node
    // (guaranteed, best-effort) pairs land on one node together.
    const std::size_t per = std::max<std::size_t>(
        1, s.vds.size() / static_cast<std::size_t>(ncompute));
    std::vector<std::uint64_t> vds;
    for (std::size_t v = static_cast<std::size_t>(i) * per;
         v < std::min(s.vds.size(), (static_cast<std::size_t>(i) + 1) * per);
         ++v) {
      vds.push_back(s.vds[v]);
    }
    if (vds.empty()) vds.push_back(s.vds[0]);
    auto submit = [&cluster, &nl, i](IoRequest io, IoCompleteFn done) {
      ++nl.issued;
      cluster.compute(i).submit_io(std::move(io),
                                   [&nl, done = std::move(done)](IoResult r) {
                                     ++nl.completed;
                                     done(std::move(r));
                                   });
    };
    sim::ShardScope scope(cluster.compute_shard(i));
    if (load == Load::kTrace) {
      workload::TraceReplayConfig tc;
      nl.replay = std::make_unique<workload::TraceReplay>(
          cluster.engine(), submit, vds, trace, tc,
          rng.fork(static_cast<std::uint64_t>(i)));
    } else {
      // Guaranteed tenant under its floor; best-effort flooding ~9x the
      // node's capacity.
      workload::PoissonConfig gc;
      gc.vd_id = vds[0];
      gc.vd_size = 256ull << 20;
      gc.iops = 2000.0;
      gc.read_fraction = 0.7;
      gc.block_size = 4096;
      nl.guaranteed = std::make_unique<workload::PoissonLoad>(
          cluster.engine(), submit, gc,
          rng.fork(1000 + static_cast<std::uint64_t>(i)));
      workload::PoissonConfig bc = gc;
      bc.vd_id = vds.size() > 1 ? vds[1] : vds[0];
      bc.iops = 90000.0;
      nl.best_effort = std::make_unique<workload::PoissonLoad>(
          cluster.engine(), submit, bc,
          rng.fork(2000 + static_cast<std::uint64_t>(i)));
    }
  }

  auto for_each_gen = [&](auto&& fn) {
    for (int i = 0; i < ncompute; ++i) {
      sim::ShardScope scope(cluster.compute_shard(i));
      fn(loads[static_cast<std::size_t>(i)]);
    }
  };
  for_each_gen([&](NodeLoad& nl) {
    sim::Engine& he = cluster.engine();
    he.at(he.now(), [&nl] {
      if (nl.replay) nl.replay->start();
      if (nl.guaranteed) nl.guaranteed->start();
      if (nl.best_effort) nl.best_effort->start();
    });
  });
  if (s.sharded) {
    s.sharded->run_until(active);
  } else {
    s.engine->run_until(active);
  }
  for_each_gen([](NodeLoad& nl) {
    if (nl.replay) nl.replay->stop();
    if (nl.guaranteed) nl.guaranteed->stop();
    if (nl.best_effort) nl.best_effort->stop();
  });
  if (s.sharded) {
    s.sharded->run();
  } else {
    s.engine->run();
  }

  RunResult r;
  r.executed = s.sharded ? s.sharded->executed() : s.engine->executed();
  r.end_time = s.sharded ? s.sharded->now() : s.engine->now();
  std::uint64_t h = mix(r.executed, static_cast<std::uint64_t>(r.end_time));
  for (int i = 0; i < ncompute; ++i) {
    const NodeLoad& nl = loads[static_cast<std::size_t>(i)];
    r.issued += nl.issued;
    r.completed += nl.completed;
    h = mix(h, nl.issued);
    h = mix(h, nl.completed);
    const qos::NodeAdmission* adm = cluster.compute(i).admission();
    const qos::NodeAdmission::Stats& st = adm->stats();
    for (int c = 0; c < qos::kSloClasses; ++c) {
      r.admitted += st.admitted[c];
      r.rejected += st.rejected[c];
      r.slo_ok += st.slo_ok[c];
      r.slo_violated += st.slo_violated[c];
      h = mix(h, st.admitted[c]);
      h = mix(h, st.rejected[c]);
      h = mix(h, st.slo_ok[c]);
      h = mix(h, st.slo_violated[c]);
    }
  }
  h = mix(h, cluster.network().drops_total().total());
  r.fingerprint = h;
  r.goodput_per_sec =
      static_cast<double>(r.slo_ok) * 1e9 / static_cast<double>(active);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      o.smoke = true;
      o.threads = {1, 2};
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      o.threads.clear();
      for (char* tok = std::strtok(argv[++i], ","); tok != nullptr;
           tok = std::strtok(nullptr, ",")) {
        o.threads.push_back(std::atoi(tok));
      }
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      o.scenario_file = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      o.trace_file = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--threads 1,2,8] "
                   "[--scenario spec.json] [--trace trace.jsonl]\n",
                   argv[0]);
      return 2;
    }
  }

  ebs::ScenarioSpec spec = base_spec(o.smoke);
  if (!o.scenario_file.empty()) {
    std::ifstream f(o.scenario_file);
    if (!f) {
      std::fprintf(stderr, "cannot open scenario: %s\n",
                   o.scenario_file.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string err;
    if (!ebs::scenario_from_json(ss.str(), &spec, &err)) {
      std::fprintf(stderr, "bad scenario: %s\n", err.c_str());
      return 2;
    }
  }
  // Capacity throttle lives in the spec-independent params: one DPU core
  // with a fat per-RPC cost, so overload factors are scenario-controlled.
  // Long enough that the steady state dominates the cold-start flood the
  // predictor admits before its first completions arrive.
  const TimeNs active = o.smoke ? ms(40) : ms(80);

  std::vector<workload::TraceRecord> trace;
  if (!o.trace_file.empty()) {
    std::string err;
    if (!workload::load_trace_file(o.trace_file, &trace, &err)) {
      std::fprintf(stderr, "bad trace: %s\n", err.c_str());
      return 2;
    }
  } else {
    workload::DiurnalTraceConfig dc;
    dc.peak_iops = o.smoke ? 60000.0 : 100000.0;  // ~10x one throttled core
    dc.duration = active - ms(2);
    dc.vds = 2;
    dc.read_fraction = 0.7;
    trace = workload::synth_diurnal_trace(dc, Rng(4242));
  }

  struct ScenarioRun {
    const char* name;
    Load load;
  };
  std::vector<ScenarioRun> scenarios;
  if (!o.scenario_file.empty() || !o.trace_file.empty()) {
    scenarios.push_back({"trace_replay", Load::kTrace});
  } else {
    scenarios.push_back({"diurnal_x10", Load::kTrace});
    scenarios.push_back({"noisy_neighbor", Load::kNoisyNeighbor});
  }

  bench::RunSummary summary("overload",
                            "goodput-under-SLO, early rejection on/off");
  std::printf("%-16s %-4s %8s %10s %10s %10s %10s %12s %18s\n", "scenario",
              "arm", "threads", "issued", "rejected", "slo_ok", "violated",
              "goodput/s", "fingerprint");
  bool ok = true;
  for (const ScenarioRun& sc : scenarios) {
    double goodput[2] = {0.0, 0.0};
    std::uint64_t issued[2] = {0, 0};
    for (int arm = 0; arm < 2; ++arm) {
      const bool early = arm == 1;
      std::uint64_t want = 0;
      bool first = true;
      for (int t : o.threads) {
        const RunResult r = run_arm(spec, sc.load, trace, active, t, early);
        if (first) {
          want = r.fingerprint;
          first = false;
        } else if (r.fingerprint != want) {
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: %s/%s fingerprint %016llx at "
                       "%d threads != %016llx\n",
                       sc.name, early ? "on" : "off",
                       static_cast<unsigned long long>(r.fingerprint), t,
                       static_cast<unsigned long long>(want));
          return 1;
        }
        goodput[arm] = r.goodput_per_sec;
        issued[arm] = r.issued;
        std::printf("%-16s %-4s %8d %10llu %10llu %10llu %10llu %12.0f   "
                    "%016llx\n",
                    sc.name, early ? "on" : "off", t,
                    static_cast<unsigned long long>(r.issued),
                    static_cast<unsigned long long>(r.rejected),
                    static_cast<unsigned long long>(r.slo_ok),
                    static_cast<unsigned long long>(r.slo_violated),
                    r.goodput_per_sec,
                    static_cast<unsigned long long>(r.fingerprint));
        summary.row()
            .set("scenario", std::string(sc.name))
            .set("early_reject", early)
            .set("threads", static_cast<std::int64_t>(t))
            .set("issued", r.issued)
            .set("admitted", r.admitted)
            .set("rejected", r.rejected)
            .set("slo_ok", r.slo_ok)
            .set("slo_violated", r.slo_violated)
            .set("goodput_per_sec", r.goodput_per_sec)
            .set("fingerprint", r.fingerprint);
      }
    }
    if (issued[0] != issued[1]) {
      std::fprintf(stderr,
                   "OFFERED-LOAD MISMATCH in %s: off issued %llu != on "
                   "issued %llu\n",
                   sc.name, static_cast<unsigned long long>(issued[0]),
                   static_cast<unsigned long long>(issued[1]));
      ok = false;
    }
    const double factor =
        goodput[0] > 0.0 ? static_cast<double>(issued[0]) * 1e9 /
                               static_cast<double>(active) / goodput[0]
                         : 0.0;
    std::printf("%s: goodput on/off = %.0f/%.0f per sec (x%.2f), offered "
                "%.1fx the OFF goodput\n",
                sc.name, goodput[1], goodput[0],
                goodput[0] > 0.0 ? goodput[1] / goodput[0] : 0.0, factor);
    if (goodput[1] <= goodput[0]) {
      std::fprintf(stderr,
                   "GOODPUT REGRESSION in %s: early rejection ON (%.0f/s) "
                   "not above OFF (%.0f/s)\n",
                   sc.name, goodput[1], goodput[0]);
      ok = false;
    }
  }
  summary.write();
  if (!ok) return 1;
  std::printf("overload: all scenarios deterministic; early rejection "
              "strictly improves goodput-under-SLO\n");
  return 0;
}
