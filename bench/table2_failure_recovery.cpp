// Table 2: number of I/Os with no response for >= 1 second under injected
// failure scenarios, LUNA vs SOLAR.
//
// Paper (90 compute + 82 storage servers, blocks 4-32KB, depth 4,
// R:W = 1:4):
//   ToR port failure 0/0; ToR switch failure 216/0; Spine failure 0/0;
//   75% drop 10 per second/0; ToR reboot 123/0; ToR blackhole 611/0;
//   Spine blackhole 1043/0.
//
// We run a scaled-down cluster (see DESIGN.md): absolute counts scale with
// servers x time, so the reproduction target is the *pattern of zeros* —
// fail-stop failures recover via carrier detection for both stacks, silent
// failures hang LUNA (pinned 5-tuples) and never SOLAR (multi-path
// consecutive-timeout failover).
//
// Each scenario is a declarative chaos::FaultPlan applied by the
// chaos::Injector (events with duration 0 hold until repair_all at
// scenario end, standing in for the ops team's much-later fix). The same
// plans replay under the oracle harness in tests/chaos_table2_test.cpp.
#include <cstdio>

#include "bench_json.h"
#include "bench_util.h"
#include "chaos/fault_plan.h"
#include "chaos/injector.h"

using namespace repro;
using ebs::StackKind;

namespace {

constexpr TimeNs kScenario = seconds(2);
constexpr TimeNs kDrain = seconds(20);

struct Scenario {
  const char* name;
  chaos::FaultPlan plan;
};

chaos::FaultEvent event(chaos::FaultKind kind, chaos::FaultTarget target,
                        TimeNs at = 0, TimeNs duration = 0,
                        double magnitude = 0.0) {
  chaos::FaultEvent e;
  e.at = at;
  e.duration = duration;
  e.kind = kind;
  e.target = target;
  e.magnitude = magnitude;
  return e;
}

std::vector<Scenario> make_scenarios() {
  using chaos::FaultKind;
  using chaos::TargetKind;
  std::vector<Scenario> scenarios;
  // One compute server's uplink 0 dies (carrier loss -> detected).
  scenarios.push_back(
      {"ToR switch port failure",
       {"tor-port", {event(FaultKind::kLinkFail, {TargetKind::kComputeNic, 0, 0})}}});
  // Hung ToR: forwarding dead, carrier up. Ops repair much later.
  scenarios.push_back(
      {"ToR switch failure (silent)",
       {"tor-silent",
        {event(FaultKind::kDeviceSilent, {TargetKind::kComputeTor, 0, -1})}}});
  scenarios.push_back(
      {"Spine switch failure (fail-stop)",
       {"spine-stop",
        {event(FaultKind::kDeviceStop, {TargetKind::kComputeSpine, 0, -1})}}});
  scenarios.push_back(
      {"Packet drop rate = 75% (one ToR)",
       {"tor-loss",
        {event(FaultKind::kLoss, {TargetKind::kComputeTor, 0, -1}, 0, 0,
               0.75)}}});
  // Reboot: links drop (detected), then come back with the FIB still
  // unprogrammed — a silent blackhole window (classic). Kind-specific
  // reverts let the fail-stop repair coincide with the silent onset.
  scenarios.push_back(
      {"ToR switch reboot/isolation",
       {"tor-reboot",
        {event(FaultKind::kDeviceStop, {TargetKind::kComputeTor, 0, -1}, 0,
               seconds(1)),
         event(FaultKind::kDeviceSilent, {TargetKind::kComputeTor, 0, -1},
               seconds(1))}}});
  // Half the flows through the element silently vanish (bad ECMP member /
  // corrupted TCAM).
  scenarios.push_back(
      {"Blackhole in a ToR switch",
       {"tor-blackhole",
        {event(FaultKind::kBlackhole, {TargetKind::kComputeTor, 1, -1}, 0, 0,
               0.5)}}});
  scenarios.push_back(
      {"Blackhole in a Spine switch",
       {"spine-blackhole",
        {event(FaultKind::kBlackhole, {TargetKind::kComputeSpine, 1, -1}, 0, 0,
               0.5)}}});
  return scenarios;
}

std::uint64_t run_scenario(StackKind stack, const Scenario& scenario) {
  auto params = bench::default_params(stack, /*compute=*/4, /*storage=*/4,
                                      /*seed=*/1234);
  params.topo.servers_per_rack = 2;  // two ToR pairs per pod
  params.topo.spines_per_pod = 2;
  params.topo.core_switches = 2;
  auto c = bench::make_cluster(params);
  auto& eng = *c.engine;

  // Paper's generated traffic: blocks 4-32KB, R:W = 1:4. Open loop at a
  // moderate per-server rate: hang *rates* are what Table 2 counts, and
  // open-loop arrivals keep probing a blackholed path the way guests do.
  std::vector<std::unique_ptr<workload::PoissonLoad>> jobs;
  for (int node = 0; node < c.cluster->num_compute(); ++node) {
    workload::PoissonConfig cfg;
    cfg.vd_id = c.vds[static_cast<std::size_t>(node)];
    cfg.iops = 2000;
    cfg.block_size = 8192;
    cfg.read_fraction = 0.2;
    jobs.push_back(std::make_unique<workload::PoissonLoad>(
        eng, bench::submit_via(*c.cluster, node), cfg,
        Rng(50 + static_cast<std::uint64_t>(node))));
    eng.at(eng.now(), [job = jobs.back().get()] { job->start(); });
  }
  eng.run_until(ms(50));  // healthy warmup
  for (auto& j : jobs) j->metrics().clear();

  chaos::Injector injector(*c.cluster);
  injector.arm(scenario.plan);
  eng.run_until(eng.now() + kScenario);
  for (auto& j : jobs) j->stop();
  injector.repair_all();
  // Let hung I/Os drain so they get counted (LUNA retries until repair).
  eng.run_until(eng.now() + kDrain);

  std::uint64_t hangs = 0;
  for (auto& j : jobs) hangs += j->metrics().hangs();
  return hangs;
}

}  // namespace

int main() {
  bench::print_header(
      "Table 2: I/Os unanswered for >=1s under failures (scaled cluster)",
      "Table 2 (LUNA hangs on silent failures; SOLAR all zeros)");

  TextTable t({"Failure scenario", "LUNA", "SOLAR"});
  bench::RunSummary summary(
      "table2", "Table 2 (I/Os unanswered >=1s under failures)");
  bool solar_all_zero = true;
  for (const auto& s : make_scenarios()) {
    std::fprintf(stderr, "[table2] %s ...\n", s.name);
    const std::uint64_t luna = run_scenario(StackKind::kLuna, s);
    const std::uint64_t solar = run_scenario(StackKind::kSolar, s);
    solar_all_zero &= (solar == 0);
    t.add_row({s.name, TextTable::num(static_cast<std::int64_t>(luna)),
               TextTable::num(static_cast<std::int64_t>(solar))});
    summary.row().set("scenario", s.name).set("luna_hangs", luna).set(
        "solar_hangs", solar);
  }
  std::printf("%s", t.render().c_str());
  summary.write();
  std::printf("shape: SOLAR column all zeros: %s (paper: yes); LUNA hangs "
              "on silent failures, none on fail-stop port/spine failures\n",
              solar_all_zero ? "YES" : "NO");
  std::printf("note: 4+4 servers for %.0fs vs the paper's 90+82 testbed — "
              "absolute counts scale accordingly (see EXPERIMENTS.md)\n",
              to_sec(kScenario));
  return 0;
}
