// Figure 6: end-to-end 4KB I/O latency breakdown (SA / FN / BN / SSD),
// median and 95th percentile, for the three stack generations.
//
// Paper anchors: LUNA cuts kernel TCP's FN latency by ~80%; after LUNA the
// SA becomes the bottleneck; SOLAR cuts the SA median by ~95% and the
// write end-to-end by up to 69%, with a residual SA tail from CPU-side
// path selection/CC under load (§4.7).
#include <cstdio>

#include "bench_json.h"
#include "bench_util.h"
#include "obs/export.h"
#include "obs/obs.h"

using namespace repro;
using ebs::StackKind;

namespace {

struct Breakdown {
  Histogram total, sa, fn, bn, ssd;
};

Breakdown measure(StackKind stack, transport::OpType op, int ios) {
  auto params = bench::default_params(stack, /*compute=*/2, /*storage=*/8);
  auto c = bench::make_cluster(params);
  auto& eng = *c.engine;
  Breakdown out;
  Rng rng(5);

  // Background load on the probe node itself *and* its sibling, so the
  // percentiles reflect a loaded production server: the software SA
  // queues behind neighbour I/O on shared cores — the effect that made SA
  // the post-LUNA bottleneck (§3.3) — while SOLAR's hardware path doesn't.
  workload::FioConfig bg;
  bg.vd_id = c.vds[1];
  bg.iodepth = 8;
  bg.block_size = 0;  // mixed sizes
  bg.read_fraction = 0.25;
  workload::FioJob bg_job(eng, bench::submit_via(*c.cluster, 1), bg, Rng(9));
  workload::PoissonConfig self;
  self.vd_id = c.vds[0];
  self.iops = 80000;
  self.block_size = 16384;
  self.read_fraction = 0.25;
  workload::PoissonLoad self_job(eng, bench::submit_via(*c.cluster, 0), self,
                                 Rng(10));
  eng.at(0, [&] {
    bg_job.start();
    self_job.start();
  });
  eng.run_until(ms(10));

  // Primed data for reads.
  const std::uint64_t vd = c.vds[0];
  int done = 0;
  for (int i = 0; i < ios; ++i) {
    transport::IoRequest io;
    io.vd_id = vd;
    io.op = op;
    io.offset = (static_cast<std::uint64_t>(rng.next_below(4096))) * 4096;
    io.len = 4096;
    if (op == transport::OpType::kWrite) {
      io.payload = transport::make_placeholder_blocks(io.offset, 4096, 4096);
    }
    bool finished = false;
    eng.at(eng.now(), [&] {
      c.cluster->compute(0).submit_io(std::move(io),
                                      [&](transport::IoResult res) {
                                        finished = true;
                                        ++done;
                                        out.total.record(res.trace.total_ns());
                                        out.sa.record(res.trace.sa_ns);
                                        out.fn.record(res.trace.fn_ns);
                                        out.bn.record(res.trace.bn_ns);
                                        out.ssd.record(res.trace.ssd_ns);
                                      });
    });
    while (!finished && eng.step()) {
    }
    eng.run_until(eng.now() + us(50));
  }
  bg_job.stop();
  self_job.stop();
  return out;
}

void print_quadrant(const char* title, transport::OpType op, double q,
                    bench::RunSummary& summary) {
  std::printf("--- %s ---\n", title);
  TextTable t({"component", "Kernel (us)", "Luna (us)", "Solar (us)"});
  std::map<StackKind, Breakdown> rows;
  for (StackKind s :
       {StackKind::kKernelTcp, StackKind::kLuna, StackKind::kSolar}) {
    rows.emplace(s, measure(s, op, 400));
  }
  auto cell = [&](StackKind s, Histogram Breakdown::*member) {
    return TextTable::num(to_us((rows.at(s).*member).percentile(q)));
  };
  t.add_row({"FN", cell(StackKind::kKernelTcp, &Breakdown::fn),
             cell(StackKind::kLuna, &Breakdown::fn),
             cell(StackKind::kSolar, &Breakdown::fn)});
  t.add_row({"BN", cell(StackKind::kKernelTcp, &Breakdown::bn),
             cell(StackKind::kLuna, &Breakdown::bn),
             cell(StackKind::kSolar, &Breakdown::bn)});
  t.add_row({"SSD", cell(StackKind::kKernelTcp, &Breakdown::ssd),
             cell(StackKind::kLuna, &Breakdown::ssd),
             cell(StackKind::kSolar, &Breakdown::ssd)});
  t.add_row({"SA", cell(StackKind::kKernelTcp, &Breakdown::sa),
             cell(StackKind::kLuna, &Breakdown::sa),
             cell(StackKind::kSolar, &Breakdown::sa)});
  t.add_row({"total", cell(StackKind::kKernelTcp, &Breakdown::total),
             cell(StackKind::kLuna, &Breakdown::total),
             cell(StackKind::kSolar, &Breakdown::total)});
  std::printf("%s", t.render().c_str());

  const std::pair<const char*, Histogram Breakdown::*> components[] = {
      {"fn", &Breakdown::fn},   {"bn", &Breakdown::bn},
      {"ssd", &Breakdown::ssd}, {"sa", &Breakdown::sa},
      {"total", &Breakdown::total}};
  for (const auto& [name, member] : components) {
    summary.row()
        .set("op", op == transport::OpType::kRead ? "read" : "write")
        .set("percentile", q)
        .set("component", name)
        .set("kernel_us",
             to_us((rows.at(StackKind::kKernelTcp).*member).percentile(q)))
        .set("luna_us",
             to_us((rows.at(StackKind::kLuna).*member).percentile(q)))
        .set("solar_us",
             to_us((rows.at(StackKind::kSolar).*member).percentile(q)));
  }

  const double kernel_fn = to_us(rows.at(StackKind::kKernelTcp).fn.percentile(q));
  const double luna_fn = to_us(rows.at(StackKind::kLuna).fn.percentile(q));
  const double luna_sa = to_us(rows.at(StackKind::kLuna).sa.percentile(q));
  const double solar_sa = to_us(rows.at(StackKind::kSolar).sa.percentile(q));
  const double luna_tot = to_us(rows.at(StackKind::kLuna).total.percentile(q));
  const double solar_tot = to_us(rows.at(StackKind::kSolar).total.percentile(q));
  std::printf("shape: LUNA cuts FN by %.0f%% (paper ~80%%); "
              "SOLAR cuts SA by %.0f%% (paper ~95%% median) and e2e vs LUNA "
              "by %.0f%% (paper 20-69%%)\n\n",
              100.0 * (1 - luna_fn / kernel_fn),
              100.0 * (1 - solar_sa / luna_sa),
              100.0 * (1 - solar_tot / luna_tot));
}

// A second, observability-enabled SOLAR pass: one 4KB write and one 4KB
// read on an instrumented cluster, exported as a Perfetto-loadable Chrome
// trace (guest -> SA/QoS -> FPGA -> fabric hops -> block server -> SSD)
// plus the metrics snapshot. This is the PR artifact CI uploads.
void export_sample_trace() {
  obs::ObsConfig oc;
  oc.trace_capacity = 1 << 15;
  obs::Obs obs(oc);
  auto params = bench::default_params(StackKind::kSolar, /*compute=*/2,
                                      /*storage=*/8);
  params.obs = &obs;
  auto c = bench::make_cluster(params);
  auto& eng = *c.engine;
  obs.attach(eng);

  const std::uint64_t vd = c.vds[0];
  for (auto op : {transport::OpType::kWrite, transport::OpType::kRead}) {
    transport::IoRequest io;
    io.vd_id = vd;
    io.op = op;
    io.offset = 0;
    io.len = 4096;
    if (op == transport::OpType::kWrite) {
      io.payload = transport::make_placeholder_blocks(0, 4096, 4096);
    }
    bool finished = false;
    eng.at(eng.now(), [&] {
      c.cluster->compute(0).submit_io(std::move(io),
                                      [&](transport::IoResult) {
                                        finished = true;
                                      });
    });
    while (!finished && eng.step()) {
    }
  }
  eng.run_until(eng.now() + ms(1));
  if (obs::export_chrome_trace("fig06_solar.trace.json", obs.tracer())) {
    std::printf("wrote fig06_solar.trace.json (%zu spans; load in "
                "ui.perfetto.dev)\n",
                obs.tracer().size());
  }
  obs::export_metrics_json("fig06_solar.metrics.json", obs.registry());
}

}  // namespace

int main() {
  bench::print_header("Figure 6: 4KB I/O latency breakdown by component",
                      "Fig. 6 a-d (Kernel/Luna/Solar; SA/FN/BN/SSD)");
  bench::RunSummary summary("fig06",
                            "Fig. 6 a-d (Kernel/Luna/Solar; SA/FN/BN/SSD)");
  print_quadrant("(a) 4KB Read, median", transport::OpType::kRead, 0.50,
                 summary);
  print_quadrant("(b) 4KB Read, 95th percentile", transport::OpType::kRead,
                 0.95, summary);
  print_quadrant("(c) 4KB Write, median", transport::OpType::kWrite, 0.50,
                 summary);
  print_quadrant("(d) 4KB Write, 95th percentile", transport::OpType::kWrite,
                 0.95, summary);
  summary.write();
  export_sample_trace();
  return 0;
}
