// Figure 8: impact of ~100 production network failures over two years on
// LUNA-era VMs — number of VMs with I/O hangs vs failure duration, by
// failure location (ToR / Spine / Core / DC router).
//
// Method: for each failure tier we *measure* (in the simulator) the
// fraction of LUNA compute servers whose I/O hangs while the failure is
// active. We then replay a synthetic two-year incident catalogue
// (durations log-uniform 2-100 min, tier mix as in the paper's scatter)
// and report impacted-VM counts: measured hang fraction x fleet slice
// affected by the tier x VMs per server. Only the catalogue is synthetic;
// the per-tier blast radius comes out of the network model.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "chaos/fault_plan.h"
#include "chaos/injector.h"

using namespace repro;
using ebs::StackKind;

namespace {

/// Fraction of compute servers with >=1 hung I/O while the failure is on.
double measure_hang_fraction(const char* tier) {
  auto params = bench::default_params(StackKind::kLuna, 4, 4, 77);
  params.topo.servers_per_rack = 2;
  auto c = bench::make_cluster(params);
  auto& eng = *c.engine;
  std::vector<std::unique_ptr<workload::PoissonLoad>> jobs;
  for (int node = 0; node < c.cluster->num_compute(); ++node) {
    workload::PoissonConfig cfg;
    cfg.vd_id = c.vds[static_cast<std::size_t>(node)];
    cfg.iops = 2000;
    cfg.block_size = 8192;
    cfg.read_fraction = 0.2;
    jobs.push_back(std::make_unique<workload::PoissonLoad>(
        eng, bench::submit_via(*c.cluster, node), cfg,
        Rng(9 + static_cast<std::uint64_t>(node))));
    eng.at(eng.now(), [j = jobs.back().get()] { j->start(); });
  }
  eng.run_until(ms(50));
  for (auto& j : jobs) j->metrics().clear();

  const std::string t = tier;
  chaos::FaultTarget target{chaos::TargetKind::kComputeTor, 0, -1};
  if (t == "Spine") target.kind = chaos::TargetKind::kComputeSpine;
  if (t == "Core" || t == "DC router") target.kind = chaos::TargetKind::kCore;
  // Production blackholes hit a subset of flows; deeper tiers carry more
  // flows through the broken element. Declarative plan, held until
  // repair_all (the incident's mitigation).
  chaos::FaultPlan plan;
  plan.name = std::string("fig08-") + tier;
  chaos::FaultEvent e;
  e.kind = chaos::FaultKind::kBlackhole;
  e.target = target;
  e.magnitude = t == "ToR" ? 0.5 : 0.35;
  plan.events.push_back(e);
  chaos::Injector injector(*c.cluster);
  injector.arm(plan);

  eng.run_until(eng.now() + seconds(2));
  for (auto& j : jobs) j->stop();
  injector.repair_all();
  eng.run_until(eng.now() + seconds(15));

  int impacted = 0;
  for (auto& j : jobs) impacted += (j->metrics().hangs() > 0);
  return static_cast<double>(impacted) / static_cast<double>(jobs.size());
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 8: VMs with I/O hangs vs failure duration (LUNA era)",
      "Fig. 8 (~100 failures over two years; impact grows with tier)");

  struct Tier {
    const char* name;
    int incidents;      // share of the ~100-incident catalogue
    double fleet_share; // fraction of the fleet behind one such element
    double vms_per_server = 12;
  };
  const Tier tiers[] = {
      {"ToR", 55, 0.002},
      {"Spine", 25, 0.02},
      {"Core", 15, 0.10},
      {"DC router", 5, 0.25},
  };
  constexpr int kFleetServers = 100000;

  TextTable t({"tier", "measured hang fraction", "incidents",
               "duration (min)", "impacted VMs (est)"});
  Rng rng(4242);
  for (const auto& tier : tiers) {
    const double frac = measure_hang_fraction(tier.name);
    for (int i = 0; i < tier.incidents; i += std::max(1, tier.incidents / 5)) {
      // Log-uniform durations from 2 to 100 minutes, like the scatter.
      const double duration_min =
          2.0 * std::pow(50.0, rng.uniform01());
      const double vms = frac * tier.fleet_share * kFleetServers *
                         tier.vms_per_server *
                         std::min(1.0, duration_min / 10.0 + 0.5);
      t.add_row({tier.name, TextTable::num(frac, 2),
                 TextTable::num(static_cast<std::int64_t>(tier.incidents)),
                 TextTable::num(duration_min, 1),
                 TextTable::num(static_cast<std::int64_t>(vms))});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf("shape: impact spans ~10 (ToR) to ~10^4+ VMs (core/DC tier), "
              "growing with failure duration — the paper's scatter; the\n"
              "12-minute core-linecard incident of §3.3 lands in the 10^3+ "
              "band\n");
  return 0;
}
